"""Gate-level MAGIC NOR simulation: derive bit-serial arithmetic costs.

Digital memristive PIM computes with *only* NOR gates executed one per
cycle inside the crossbar ("arithmetic operations like addition and
multiplication are achieved by performing NOR operations sequentially",
paper §2.3).  Rather than quoting per-operation NOR counts from FloatPIM,
this module *executes* NOR-only netlists for addition and multiplication,
verifying correctness bit-exactly and measuring the cycle counts that
:mod:`repro.pim.arithmetic` turns into latency and energy.

Every logic primitive below is reduced to NOR::

    NOT(a)    = NOR(a)                      1 cycle
    OR(a,b)   = NOT(NOR(a,b))               2 cycles
    AND(a,b)  = NOR(NOT a, NOT b)           3 cycles
    XOR(a,b)  = NOR(NOR(a,b), AND(a,b))     5 cycles (sharing NOTs)

The ripple-carry full adder costs a fixed number of cycles per bit
(measured, exposed as :data:`FULL_ADDER_STEPS`); an N-bit add therefore
costs ``N * FULL_ADDER_STEPS`` cycles, and the shift-add multiplier costs
``O(N^2)`` — the reason the paper calls PIM arithmetic "not as efficient
as other CMOS designs" per op while winning on row-parallelism.

These measured counts are also what the execution-plan engine bakes into
its per-instruction ``nors`` column at lowering time
(:func:`repro.pim.plan.lower_program`), so fault-enabled plan replay
charges NOR wear-out (``FaultModel.record_nor``) with exactly the cycle
counts the serial audit dispatcher derives from the same netlists.
"""

from __future__ import annotations

__all__ = [
    "NorMachine",
    "VectorNorMachine",
    "nor_add",
    "nor_multiply",
    "nor_add_vec",
    "nor_multiply_vec",
    "pack_lanes",
    "unpack_lanes",
    "FULL_ADDER_STEPS",
    "LANES",
    "int_add_steps",
    "int_multiply_steps",
]

#: Lanes of the word-packed NOR path: one Python ``int`` carries one bit
#: position of 64 independent operands (uint64 semantics).
LANES = 64

_MASK64 = (1 << LANES) - 1


class NorMachine:
    """Counts NOR cycles while evaluating NOR-only logic on Python ints (0/1).

    With ``flip_prob > 0`` (and a seeded ``rng``) each NOR output may flip —
    the gate-level view of the transient faults :mod:`repro.faults` injects
    at instruction granularity.  Flips are counted in ``self.flips`` so
    tests can correlate corrupted sums with the injected upsets.
    """

    def __init__(self, flip_prob: float = 0.0, rng=None):
        self.steps = 0
        self.flips = 0
        self.flip_prob = flip_prob
        self._rng = rng

    def nor(self, *inputs: int) -> int:
        """An n-input MAGIC NOR: one crossbar cycle."""
        if not inputs:
            raise ValueError("NOR needs at least one input")
        self.steps += 1
        out = 0 if any(inputs) else 1
        if self.flip_prob > 0.0 and self._rng is not None:
            if self._rng.random() < self.flip_prob:
                self.flips += 1
                out ^= 1
        return out

    def nor_vec(self, *inputs: int) -> int:
        """A word-packed NOR: 64 independent lanes in one crossbar cycle.

        Inputs and output are uint64 words holding one bit of each lane —
        the MAGIC array computes all rows of a crossbar column in parallel
        anyway (§2.3), so a row-parallel gate costs the *same* single cycle
        as the scalar :meth:`nor`; only the Python simulation gets 64×
        cheaper.  Fault flips are drawn per lane, matching 64 scalar
        machines gate-for-gate in distribution.
        """
        if not inputs:
            raise ValueError("NOR needs at least one input")
        self.steps += 1
        acc = 0
        for x in inputs:
            acc |= x
        out = ~acc & _MASK64
        if self.flip_prob > 0.0 and self._rng is not None:
            mask = 0
            for lane in range(LANES):
                if self._rng.random() < self.flip_prob:
                    mask |= 1 << lane
            if mask:
                self.flips += bin(mask).count("1")
                out ^= mask
        return out

    # -- derived gates (each expands to NOR cycles) ---------------------- #

    def not_(self, a: int) -> int:
        return self.nor(a)

    def or_(self, a: int, b: int) -> int:
        return self.nor(self.nor(a, b))

    def and_(self, a: int, b: int) -> int:
        return self.nor(self.nor(a), self.nor(b))

    def xor_(self, a: int, b: int) -> int:
        n1 = self.nor(a, b)
        n2 = self.nor(self.nor(a), self.nor(b))  # AND(a, b)
        return self.nor(n1, n2)

    def full_adder(self, a: int, b: int, c: int) -> tuple[int, int]:
        """One-bit full adder; NOT-sharing keeps it at 12 NOR cycles."""
        n1 = self.nor(a, b)
        na = self.nor(a)
        nb = self.nor(b)
        ab = self.nor(na, nb)  # AND(a, b)
        x1 = self.nor(n1, ab)  # XOR(a, b)
        m1 = self.nor(x1, c)
        nx = self.nor(x1)
        nc = self.nor(c)
        xc = self.nor(nx, nc)  # AND(x1, c)
        s = self.nor(m1, xc)  # XOR(x1, c)
        t = self.nor(ab, xc)
        cout = self.nor(t)  # OR(ab, xc)
        return s, cout


class VectorNorMachine(NorMachine):
    """A :class:`NorMachine` whose gates run 64 word-packed lanes at once.

    :meth:`nor` delegates to :meth:`NorMachine.nor_vec`, so every inherited
    netlist (the derived gates and :meth:`full_adder`) evaluates 64
    independent operand sets per Python gate call with cycle counts
    *identical by construction* to the scalar machine — the netlists are
    shared, only the gate primitive changed.
    """

    def nor(self, *inputs: int) -> int:
        return self.nor_vec(*inputs)


#: Measured NOR cycles of one full-adder invocation (asserted by tests).
FULL_ADDER_STEPS = 12


def _to_bits(value: int, width: int) -> list:
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return [(value >> i) & 1 for i in range(width)]


def _from_bits(bits) -> int:
    return sum(b << i for i, b in enumerate(bits))


def nor_add(a: int, b: int, width: int = 32, machine: NorMachine | None = None):
    """NOR-only ripple-carry addition of two ``width``-bit unsigned ints.

    Returns ``(sum mod 2^width, carry_out, nor_cycles)``.
    """
    m = machine or NorMachine()
    start = m.steps
    abits = _to_bits(a, width)
    bbits = _to_bits(b, width)
    out = []
    carry = 0
    for i in range(width):
        s, carry = m.full_adder(abits[i], bbits[i], carry)
        out.append(s)
    return _from_bits(out), carry, m.steps - start


def nor_multiply(a: int, b: int, width: int = 16, machine: NorMachine | None = None):
    """NOR-only shift-add multiplication of two ``width``-bit unsigned ints.

    Partial products are formed with one NOR per bit (the multiplicand and
    multiplier bits are pre-inverted once), then accumulated with the
    ripple-carry adder.  Returns ``(product, nor_cycles)``; the product has
    ``2 * width`` bits.
    """
    m = machine or NorMachine()
    start = m.steps
    abits = _to_bits(a, width)
    bbits = _to_bits(b, width)
    na = [m.not_(x) for x in abits]
    nb = [m.not_(x) for x in bbits]
    acc = [0] * (2 * width)
    for i in range(width):
        # partial product i: AND(a_j, b_i) = NOR(na_j, nb_i), one cycle each
        pp = [m.nor(na[j], nb[i]) for j in range(width)]
        # accumulate into acc[i : i + width + 1] with ripple carry
        carry = 0
        for j in range(width):
            s, carry = m.full_adder(acc[i + j], pp[j], carry)
            acc[i + j] = s
        if i + width < 2 * width:
            acc[i + width] = carry
    return _from_bits(acc), m.steps - start


def pack_lanes(values, width: int) -> list:
    """Bit-plane pack: up to 64 ``width``-bit ints -> ``width`` uint64 words.

    Word ``i`` of the result holds bit ``i`` of every lane (lane ``k`` in
    bit position ``k``) — the layout :meth:`NorMachine.nor_vec` operates on.
    """
    vals = list(values)
    if len(vals) > LANES:
        raise ValueError(f"at most {LANES} lanes, got {len(vals)}")
    for v in vals:
        if v < 0 or v >= (1 << width):
            raise ValueError(f"value {v} does not fit in {width} bits")
    return [
        sum(((v >> i) & 1) << lane for lane, v in enumerate(vals))
        for i in range(width)
    ]


def unpack_lanes(planes, n_lanes: int) -> list:
    """Inverse of :func:`pack_lanes`: bit-plane words -> per-lane ints."""
    return [
        sum(((planes[i] >> lane) & 1) << i for i in range(len(planes)))
        for lane in range(n_lanes)
    ]


def _require_vec(machine) -> "NorMachine":
    m = machine or VectorNorMachine()
    if not isinstance(m, VectorNorMachine):
        raise TypeError(
            "word-packed netlists need a VectorNorMachine (a scalar nor() "
            "would misread packed operands as single bits)"
        )
    return m


def nor_add_vec(avals, bvals, width: int = 32, machine=None):
    """64-lane word-packed ripple-carry addition.

    Adds up to 64 pairs of ``width``-bit unsigned ints through the *same*
    full-adder netlist as :func:`nor_add`, one packed word per bit plane.
    Returns ``(sums, carry_outs, nor_cycles)`` where the cycle count equals
    a single scalar :func:`nor_add` — one crossbar cycle per gate serves
    every lane (row-parallelism, §2.3).
    """
    avals, bvals = list(avals), list(bvals)
    if len(avals) != len(bvals):
        raise ValueError("lane counts differ")
    m = _require_vec(machine)
    start = m.steps
    ap = pack_lanes(avals, width)
    bp = pack_lanes(bvals, width)
    out = []
    carry = 0
    for i in range(width):
        s, carry = m.full_adder(ap[i], bp[i], carry)
        out.append(s)
    n = len(avals)
    return unpack_lanes(out, n), unpack_lanes([carry], n), m.steps - start


def nor_multiply_vec(avals, bvals, width: int = 16, machine=None):
    """64-lane word-packed shift-add multiplication.

    The exact gate sequence of :func:`nor_multiply` evaluated on packed
    bit planes; returns ``(products, nor_cycles)`` with a cycle count
    identical to one scalar multiply (``int_multiply_steps``).
    """
    avals, bvals = list(avals), list(bvals)
    if len(avals) != len(bvals):
        raise ValueError("lane counts differ")
    m = _require_vec(machine)
    start = m.steps
    ap = pack_lanes(avals, width)
    bp = pack_lanes(bvals, width)
    na = [m.not_(x) for x in ap]
    nb = [m.not_(x) for x in bp]
    acc = [0] * (2 * width)
    for i in range(width):
        pp = [m.nor(na[j], nb[i]) for j in range(width)]
        carry = 0
        for j in range(width):
            s, carry = m.full_adder(acc[i + j], pp[j], carry)
            acc[i + j] = s
        if i + width < 2 * width:
            acc[i + width] = carry
    return unpack_lanes(acc, len(avals)), m.steps - start


def int_add_steps(width: int) -> int:
    """Closed-form NOR cycles of an N-bit add (tests check vs measurement)."""
    return width * FULL_ADDER_STEPS


def int_multiply_steps(width: int) -> int:
    """Closed-form NOR cycles of an N-bit shift-add multiply.

    ``2 N`` pre-inversions + per iteration ``N`` partial-product NORs and an
    ``N``-bit ripple add.
    """
    return 2 * width + width * (width + width * FULL_ADDER_STEPS)
