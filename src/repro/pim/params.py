"""Hardware parameters: the paper's Tables 3 and 4, plus chip configs.

Every constant here is traceable to the paper:

* Table 4 — memristor device energies/latencies (from FloatPIM):
  ``E_set = 23.8 fJ``, ``E_reset = 0.32 fJ``, ``E_NOR = 0.29 fJ``,
  ``E_search = 5.34 pJ``, ``T_NOR = 1.1 ns``, ``T_search = 1.5 ns``.
* Table 3 — component powers of the 2 GB chip: crossbar array 6.14 mW,
  sense amps 2.38 mW, decoder 0.31 mW (block total 8.83 mW), tile memory
  (256 crossbars) 1.57 W, H-tree switches 107.13 mW / bus switch 17.2 mW,
  central controller 6.41 W, CPU host (ARM Cortex-A72) 3.06 W; chip totals
  115.02 W (H-tree) / 109.25 W (Bus).
* Table 2 — PIM capacities 512 MB / 2 GB / 8 GB / 16 GB at 900 MHz on a
  28 nm node with a 900 GB/s HBM2 off-chip memory.
* §7.3 — 28 nm -> 12 nm approximate scaling: 3.81x performance, 2.0x
  energy savings.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property

__all__ = [
    "DeviceParams",
    "ComponentPower",
    "ChipConfig",
    "ProcessScaling",
    "CHIP_CONFIGS",
    "DEFAULT_DEVICE",
    "DEFAULT_POWER",
    "DEFAULT_SCALING",
    "MB",
    "GB",
]

MB = 1 << 20
GB = 1 << 30


@dataclass(frozen=True)
class DeviceParams:
    """Memristor device-level energy and timing (paper Table 4)."""

    e_set_j: float = 23.8e-15
    e_reset_j: float = 0.32e-15
    e_nor_j: float = 0.29e-15
    e_search_j: float = 5.34e-12
    t_nor_s: float = 1.1e-9
    t_search_s: float = 1.5e-9
    #: row-buffer write-back time; Table 4 gives no separate number, we
    #: assume symmetry with the 1.5 ns row read (documented in DESIGN.md).
    t_row_write_s: float = 1.5e-9

    @property
    def t_row_read_s(self) -> float:
        """Reading one row into the row buffer costs one search."""
        return self.t_search_s


@dataclass(frozen=True)
class ComponentPower:
    """Per-component static power in watts (paper Table 3, 2 GB chip)."""

    crossbar_array_w: float = 6.14e-3
    sense_amp_w: float = 2.38e-3
    decoder_w: float = 0.31e-3
    htree_switches_per_tile_w: float = 0.10713
    bus_switch_w: float = 0.0172
    central_controller_w: float = 6.41
    cpu_host_w: float = 3.06
    hbm_w: float = 36.91  # §7.1, from [34]

    @property
    def block_w(self) -> float:
        """Active power of one memory block (8.83 mW in Table 3)."""
        return self.crossbar_array_w + self.sense_amp_w + self.decoder_w

    def tile_memory_w(self, blocks_per_tile: int = 256) -> float:
        """Table 3's "Tile Memory" row counts the crossbar arrays (1.57 W)."""
        return self.crossbar_array_w * blocks_per_tile

    def tile_w(self, interconnect: str, blocks_per_tile: int = 256) -> float:
        """Tile total: memory + switches (1.68 W H-tree / 1.59 W Bus)."""
        switches = (
            self.htree_switches_per_tile_w if interconnect == "htree" else self.bus_switch_w
        )
        return self.tile_memory_w(blocks_per_tile) + switches


@dataclass(frozen=True)
class ProcessScaling:
    """§7.3: approximate 28 nm -> 12 nm scaling per [2, 50]."""

    performance: float = 3.81
    energy: float = 2.0
    node_from: str = "28nm"
    node_to: str = "12nm"


@dataclass(frozen=True)
class ChipConfig:
    """One Wave-PIM chip configuration (capacity column of Table 2).

    A block is 1K x 1K bits = 128 KiB; a tile holds 256 blocks = 32 MiB;
    the chip scales by tile count only ("we keep the crossbar array size as
    1K*1K ... and only increase/decrease the number of tiles", §7.1).
    """

    name: str
    capacity_bytes: int
    block_rows: int = 1024
    block_cols: int = 1024
    blocks_per_tile: int = 256
    interconnect: str = "htree"
    clock_hz: float = 900e6
    process_node: str = "28nm"
    device: DeviceParams = field(default_factory=DeviceParams)
    power: ComponentPower = field(default_factory=ComponentPower)

    def __post_init__(self) -> None:
        if self.interconnect not in ("htree", "bus"):
            raise ValueError(f"interconnect must be 'htree' or 'bus', got {self.interconnect!r}")
        if self.capacity_bytes % self.tile_bytes:
            raise ValueError(
                f"capacity {self.capacity_bytes} not a whole number of "
                f"{self.tile_bytes}-byte tiles"
            )

    # -- geometry ------------------------------------------------------- #
    # cached_property works on the frozen dataclass because it assigns via
    # the instance __dict__, which freezing does not forbid; the values are
    # pure functions of frozen fields, so caching is sound.

    @cached_property
    def block_bytes(self) -> int:
        return self.block_rows * self.block_cols // 8

    @cached_property
    def tile_bytes(self) -> int:
        return self.block_bytes * self.blocks_per_tile

    @cached_property
    def n_tiles(self) -> int:
        return self.capacity_bytes // self.tile_bytes

    @cached_property
    def n_blocks(self) -> int:
        return self.n_tiles * self.blocks_per_tile

    @cached_property
    def row_words(self) -> int:
        """32-bit words per row (32 for the 1K row)."""
        return self.block_cols // 32

    @cached_property
    def max_parallel_ops(self) -> int:
        """Paper §7.1: max parallelism = capacity / 1024 bits (16M at 2 GB)."""
        return self.capacity_bytes * 8 // self.block_cols

    def with_interconnect(self, kind: str) -> "ChipConfig":
        return replace(self, interconnect=kind)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}({self.interconnect})"


def _cfg(name: str, capacity: int) -> ChipConfig:
    return ChipConfig(name=name, capacity_bytes=capacity)


#: The four evaluated capacities (Table 2 / Table 5 columns).
CHIP_CONFIGS: dict[str, ChipConfig] = {
    "512MB": _cfg("512MB", 512 * MB),
    "2GB": _cfg("2GB", 2 * GB),
    "8GB": _cfg("8GB", 8 * GB),
    "16GB": _cfg("16GB", 16 * GB),
}

DEFAULT_DEVICE = DeviceParams()
DEFAULT_POWER = ComponentPower()
DEFAULT_SCALING = ProcessScaling()
