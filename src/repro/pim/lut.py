"""Look-up tables in ordinary memory blocks (paper §4.3, Fig. 4, Alg. 1).

"In the ISA-based PIM system, look-up tables are implemented with ordinary
memory blocks, instead of customized hardware units.  Contents of look-up
tables will be loaded to the reserved memory blocks before the computation
begins."

A LUT access is "a special case of inter-block data transmission": fetch a
32-bit index from the requesting block, read the addressed 32-bit entry
from the LUT block, write it back to the destination offset — the three
read/read/write steps of Algorithm 1, which :meth:`LookupTable.execute`
follows literally (the address arithmetic assumes the paper's 1024 x 1024
block and 32-bit precision, hence the 5-bit offsets).
"""

from __future__ import annotations

import numpy as np

from repro.pim.block import MemoryBlock
from repro.pim.isa import LutInstructionFormat

__all__ = ["LookupTable"]


class LookupTable:
    """A host-filled table living in a reserved memory block."""

    def __init__(self, block: MemoryBlock, name: str = "lut"):
        self.block = block
        self.name = name
        self.capacity = block.rows * block.row_words

    # -- host side -------------------------------------------------------- #

    def load(self, values) -> int:
        """Host pre-load: fill the table row-major; returns entry count.

        "Contents of look-up tables will be loaded to the reserved memory
        blocks before the computation begins."
        """
        values = np.asarray(values, dtype=np.float32).ravel()
        if values.size > self.capacity:
            raise ValueError(
                f"{values.size} entries exceed LUT capacity {self.capacity}"
            )
        rows = -(-values.size // self.block.row_words)
        padded = np.zeros(rows * self.block.row_words, dtype=np.float32)
        padded[: values.size] = values
        self.block.data[:rows] = padded.reshape(rows, self.block.row_words)
        return values.size

    def entry(self, index: int) -> float:
        """Direct (host-view) read of entry ``index``."""
        if not 0 <= index < self.capacity:
            raise IndexError(f"LUT index {index} outside capacity {self.capacity}")
        r, c = divmod(index, self.block.row_words)
        return float(self.block.data[r, c])

    # -- Algorithm 1 -------------------------------------------------------- #

    def execute(self, requester: MemoryBlock, instruction_word: int) -> float:
        """Execute one encoded LUT instruction (Alg. 1) functionally.

        1. R_1: fetch the 32-bit index at ``row_id * 1024 + offset_s * 32``
           of the requesting block.
        2. R_2: fetch the 32-bit content at ``lut_block * 1M + index * 32``.
        3. W_1: write the content to ``row_id * 1024 + offset_d * 32``.

        Returns the fetched content.  The index is stored as a float in the
        requester (everything in the datapath is float32) and truncated.
        """
        f = LutInstructionFormat.decode(instruction_word)
        row = f["row_id"]
        if row >= requester.rows:
            raise IndexError(f"row_id {row} outside requesting block")
        index = int(requester.data[row, f["offset_s"]])
        content = self.entry(index)
        requester.data[row, f["offset_d"]] = np.float32(content)
        return content

    def execute_fields(
        self, requester: MemoryBlock, row_id: int, offset_s: int, offset_d: int
    ) -> float:
        """Convenience wrapper that encodes then executes (round-trips Fig. 4)."""
        word = LutInstructionFormat.encode(
            row_id=row_id, offset_s=offset_s, lut_block_id=self.block.block_id, offset_d=offset_d
        )
        return self.execute(requester, word)
