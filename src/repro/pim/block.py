"""The PIM memory block: 1K x 1K memristor crossbar with row-parallel math.

"The memory block is the most basic unit, which contains memristor memory
cells, sense amplifiers, decoders, row and column drivers, and row and
column buffers ... computations are performed inside the blocks in a
bit-serial way utilizing NOR operations inherently, without any separate
ALU hardware." (§4.1)

Functionally we model the block at word granularity: 1024 rows of 32
float32 words (= 1024 bits).  An arithmetic instruction applies to one
word-column triple across a *range of rows simultaneously* — the
row-parallelism that gives PIM its throughput — while the timing model in
:mod:`repro.pim.arithmetic` prices it at the bit-serial NOR latency.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MemoryBlock"]


class MemoryBlock:
    """Word-level functional model of one crossbar memory block."""

    def __init__(self, rows: int = 1024, row_words: int = 32, block_id: int = 0):
        if rows < 1 or row_words < 1:
            raise ValueError("block needs positive rows and row_words")
        self.rows = rows
        self.row_words = row_words
        self.block_id = block_id
        self.data = np.zeros((rows, row_words), dtype=np.float32)

    # -- bounds checking ------------------------------------------------- #

    def _rows(self, rows):
        """Normalize a row selector: ``(start, stop)`` tuple or index array.

        The row drivers can activate an arbitrary subset of rows (face
        nodes are scattered through the node enumeration), so arithmetic
        accepts either form; timing is row-count independent either way.

        Side-effect-free by contract: the plan engine
        (:meth:`repro.pim.plan._VecSegment.build_apply`) validates whole
        segments through ``_rows``/``_check`` *before* mutating any block
        state, which is what makes a rejected stream execute nothing at
        all under plan replay.
        """
        if isinstance(rows, tuple):
            r0, r1 = rows
            if not (0 <= r0 <= r1 <= self.rows):
                raise IndexError(f"row range {rows} outside block of {self.rows} rows")
            return slice(r0, r1), r1 - r0
        idx = np.asarray(rows, dtype=np.int64)
        if idx.ndim != 1:
            raise ValueError("row index array must be 1-D")
        if idx.size and (idx.min() < 0 or idx.max() >= self.rows):
            raise IndexError("row index outside block")
        return idx, idx.size

    def _check(self, rows, *cols: int):
        sel, _ = self._rows(rows)
        for c in cols:
            if c is not None and not 0 <= c < self.row_words:
                raise IndexError(f"column {c} outside row of {self.row_words} words")
        return sel

    # -- row-parallel arithmetic ------------------------------------------ #

    def add(self, rows, dst: int, src1: int, src2: int) -> None:
        sel = self._check(rows, dst, src1, src2)
        self.data[sel, dst] = self.data[sel, src1] + self.data[sel, src2]

    def sub(self, rows, dst: int, src1: int, src2: int) -> None:
        sel = self._check(rows, dst, src1, src2)
        self.data[sel, dst] = self.data[sel, src1] - self.data[sel, src2]

    def mul(self, rows, dst: int, src1: int, src2: int) -> None:
        sel = self._check(rows, dst, src1, src2)
        self.data[sel, dst] = self.data[sel, src1] * self.data[sel, src2]

    # -- data movement ----------------------------------------------------- #

    def copy_column(self, rows, dst: int, src: int) -> None:
        sel = self._check(rows, dst, src)
        self.data[sel, dst] = self.data[sel, src]

    def gather(self, rows, dst: int, src: int, row_map) -> None:
        """``data[rows[i], dst] = data[row_map[i], src]``.

        The decoder lowers this to a serial micro-sequence of row
        reads/writes; functionally it is a permutation copy.
        """
        sel, n = self._rows(rows)
        self._check(rows, dst, src)
        row_map = np.asarray(row_map, dtype=np.int64)
        if row_map.shape != (n,):
            raise ValueError(f"row_map must have {n} entries, got {row_map.shape}")
        if row_map.size and (np.any(row_map < 0) or np.any(row_map >= self.rows)):
            raise IndexError("row_map entry outside block")
        self.data[sel, dst] = self.data[row_map, src]

    def broadcast(self, rows, dst: int, value) -> None:
        """Write a constant (or per-row vector) into a column slice."""
        sel, n = self._rows(rows)
        self._check(rows, dst)
        value = np.asarray(value, dtype=np.float32)
        if value.ndim not in (0, 1):
            raise ValueError("broadcast value must be scalar or 1-D")
        if value.ndim == 1 and value.shape != (n,):
            raise ValueError(f"broadcast vector must have {n} entries")
        self.data[sel, dst] = value

    # -- fault injection ---------------------------------------------------- #

    def flip_bit(self, row: int, col: int, bit: int) -> None:
        """Flip one bit of the float32 word at ``(row, col)`` in place.

        Models a transient upset in the bit-serial datapath; operates on
        the raw IEEE-754 pattern so a sign/exponent/mantissa bit flips
        exactly as the hardware would see it.
        """
        self._check((row, row + 1), col)
        if not 0 <= bit < 32:
            raise IndexError(f"bit {bit} outside the 32-bit word")
        u = self.data.view(np.uint32)
        u[row, col] ^= np.uint32(1) << np.uint32(bit)

    def force_bits(self, rows, col: int, bits, values) -> None:
        """Force stuck-at cells: bit ``bits[i]`` of ``(rows[i], col)`` reads
        ``values[i]`` regardless of what was written."""
        rows = np.asarray(rows, dtype=np.int64)
        self._check(rows, col)
        bits = np.asarray(bits, dtype=np.uint32)
        if bits.size and int(bits.max()) >= 32:
            raise IndexError("bit index outside the 32-bit word")
        mask = np.uint32(1) << bits
        u = self.data.view(np.uint32)
        word = u[rows, col]
        u[rows, col] = np.where(np.asarray(values).astype(bool), word | mask, word & ~mask)

    def read(self, rows, col: int) -> np.ndarray:
        sel = self._check(rows, col)
        return self.data[sel, col].copy()

    def write(self, rows, col: int, values) -> None:
        sel, n = self._rows(rows)
        self._check(rows, col)
        values = np.asarray(values, dtype=np.float32)
        if values.shape != (n,):
            raise ValueError(f"write expects {n} values, got {values.shape}")
        self.data[sel, col] = values

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MemoryBlock(id={self.block_id}, {self.rows}x{self.row_words} words)"
