"""Off-chip HBM2 memory model (paper §7.1).

"We assume a 900 GB/s HBM2 DRAM as the off-chip memory for our Wave-PIM,
where the power of the off-chip memory is 36.91 W."  Off-chip traffic only
occurs when the problem does not fit on the PIM chip — the *batching*
technique of §6.1 — which is why the 512 MB chip "does not perform well"
on the level-5 elastic benchmarks (§7.3): 32 batches of DRAM transactions.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HbmModel"]


@dataclass(frozen=True)
class HbmModel:
    """Bandwidth/latency/power model of the off-chip DRAM path."""

    bandwidth_bytes_per_s: float = 900e9
    power_w: float = 36.91
    #: fixed transaction overhead (row activation + channel arbitration)
    latency_s: float = 100e-9

    def transfer_time_s(self, n_bytes: float) -> float:
        """Time to move ``n_bytes`` (one streaming transaction)."""
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        if n_bytes == 0:
            return 0.0
        return self.latency_s + n_bytes / self.bandwidth_bytes_per_s

    def transfer_energy_j(self, n_bytes: float) -> float:
        """Active energy: DRAM power over the busy window."""
        return self.transfer_time_s(n_bytes) * self.power_w
