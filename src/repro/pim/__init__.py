"""Cycle-level digital PIM substrate.

Models the Wave-PIM hardware bottom-up from the paper's Table 3/4
parameters: memristor device energies and the NOR latency, MAGIC-style
NOR-only bit-serial arithmetic (gate-level simulated in :mod:`magic` to
*derive* the per-operation NOR counts), 1K x 1K memory blocks with
row-parallel execution, tiles of 256 blocks joined by an H-tree or Bus,
chips of 512 MB - 16 GB, a 900 GB/s HBM2 off-chip path, an ISA with the
paper's LUT instruction (Fig. 4 / Alg. 1), and an executor that provides
both functional semantics (numpy row math, float32) and timing/energy
accounting from the same cost tables.
"""

from repro.pim.params import (
    DeviceParams,
    ComponentPower,
    ChipConfig,
    ProcessScaling,
    CHIP_CONFIGS,
    DEFAULT_DEVICE,
    DEFAULT_POWER,
    DEFAULT_SCALING,
)
from repro.pim.magic import NorMachine, nor_add, nor_multiply
from repro.pim.arithmetic import OpCosts, default_op_costs
from repro.pim.isa import Opcode, Instruction, LutInstructionFormat
from repro.pim.block import MemoryBlock
from repro.pim.lut import LookupTable
from repro.pim.hbm import HbmModel
from repro.pim.tile import Tile
from repro.pim.chip import PimChip
from repro.pim.executor import BlockExecutor, ChipExecutor, TimingReport
from repro.pim.energy import EnergyAccount, chip_power_table

__all__ = [
    "DeviceParams",
    "ComponentPower",
    "ChipConfig",
    "ProcessScaling",
    "CHIP_CONFIGS",
    "DEFAULT_DEVICE",
    "DEFAULT_POWER",
    "DEFAULT_SCALING",
    "NorMachine",
    "nor_add",
    "nor_multiply",
    "OpCosts",
    "default_op_costs",
    "Opcode",
    "Instruction",
    "LutInstructionFormat",
    "MemoryBlock",
    "LookupTable",
    "HbmModel",
    "Tile",
    "PimChip",
    "BlockExecutor",
    "ChipExecutor",
    "TimingReport",
    "EnergyAccount",
    "chip_power_table",
]
