"""A memory tile: 256 blocks plus their interconnect (paper Fig. 3).

Blocks are materialized lazily — a functional simulation of a small
problem touches only a handful of blocks, while the analytic timing path
never allocates block storage at all.
"""

from __future__ import annotations

from repro.interconnect import Bus, HTree, Interconnect
from repro.pim.block import MemoryBlock
from repro.pim.params import ChipConfig

__all__ = ["Tile", "make_interconnect"]


def make_interconnect(kind: str, n_blocks: int, fanout: int = 4) -> Interconnect:
    """Build a tile interconnect of the configured kind."""
    if kind == "htree":
        return HTree(n_blocks=n_blocks, fanout=fanout)
    if kind == "bus":
        return Bus(n_blocks=n_blocks)
    raise ValueError(f"unknown interconnect kind {kind!r}")


class Tile:
    """One memory tile of a Wave-PIM chip."""

    def __init__(self, config: ChipConfig, tile_id: int = 0):
        self.config = config
        self.tile_id = tile_id
        self.n_blocks = config.blocks_per_tile
        self.interconnect = make_interconnect(config.interconnect, self.n_blocks)
        self._blocks: dict = {}

    def block(self, local_id: int) -> MemoryBlock:
        """The block with tile-local id ``local_id`` (lazily created)."""
        if not 0 <= local_id < self.n_blocks:
            raise IndexError(f"block {local_id} outside tile of {self.n_blocks}")
        blk = self._blocks.get(local_id)
        if blk is None:
            blk = MemoryBlock(
                rows=self.config.block_rows,
                row_words=self.config.row_words,
                block_id=self.tile_id * self.n_blocks + local_id,
            )
            self._blocks[local_id] = blk
        return blk

    @property
    def materialized_blocks(self) -> int:
        return len(self._blocks)

    def static_power_w(self) -> float:
        """Tile static power (Table 3: 1.68 W H-tree / 1.59 W Bus)."""
        return self.config.power.tile_w(self.config.interconnect, self.n_blocks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Tile(id={self.tile_id}, blocks={self.n_blocks}, "
            f"interconnect={self.interconnect.name})"
        )
