"""The Wave-PIM instruction set.

"Wave simulation can be abstracted as general memory instructions and
arithmetic instructions.  Instructions are sent from the host, and are
pre-processed by the decoder on the PIM chip.  Next, micro sequences are
generated and sent to each memory block." (§4.1)

The ISA below is the instruction stream the Wave-PIM compiler
(:mod:`repro.core.kernels`) emits and the executor prices/executes:

=============  ====================================================
``ADD/SUB/MUL``  row-parallel float32 arithmetic between three columns
``GATHER``       intra-block row permutation copy (micro-sequence of
                 row reads/writes; used to stage derivative taps)
``BROADCAST``    write a constant column into a row range (Fig. 6 step 1)
``COPY``         intra-block column copy over a row range
``TRANSFER``     inter-block memcpy routed by the H-tree/Bus (§4.2)
``LUT``          the Fig. 4 look-up-table instruction (Alg. 1)
``HOSTOP``       sqrt/inverse offloaded to the host CPU (§4.3)
``DRAM_LOAD/STORE``  off-chip HBM transactions (batching, §6.1)
``BARRIER``      phase synchronization marker
=============  ====================================================

The 64-bit LUT encoding follows Fig. 4 exactly:
``opcode[63:57] | row_id[56:31] | offset_s[30:26] | lut_block[25:5] |
offset_d[4:0]`` — 5-bit offsets because a 1024-bit row holds 32 32-bit
words.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["Opcode", "Instruction", "LutInstructionFormat", "ARITHMETIC_OPS", "barrier"]


class Opcode(enum.Enum):
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    GATHER = "gather"
    BROADCAST = "broadcast"
    COPY = "copy"
    TRANSFER = "transfer"
    LUT = "lut"
    HOSTOP = "hostop"
    DRAM_LOAD = "dram_load"
    DRAM_STORE = "dram_store"
    BARRIER = "barrier"


#: Opcodes whose latency comes from the arithmetic NOR tables.
ARITHMETIC_OPS = {Opcode.ADD, Opcode.SUB, Opcode.MUL}


@dataclass
class Instruction:
    """One decoded Wave-PIM instruction.

    Only the fields relevant to the opcode are populated; the executor
    validates the combination.  ``block`` is a *global* block id.

    Field semantics
    ---------------
    rows:
        ``(start, stop)`` row range the op applies to (row-parallel).
    dst/src1/src2:
        Column (word) indices within the row for arithmetic, or column
        indices for COPY/BROADCAST/GATHER.
    row_map:
        For GATHER: sequence such that ``data[r, dst] = data[row_map[r -
        rows[0]], src1]``.
    n_unique_rows:
        For GATHER: number of distinct source rows in ``row_map``, the
        quantity that prices the micro-sequence.  Computed once at emit
        time (the row map is static) so the executor's hot loop does not
        re-run ``np.unique`` per dispatch; left ``None`` for hand-built
        instructions, in which case the executor derives it.
    value:
        For BROADCAST: the constant (or per-row array) to write.
    src_block/words:
        For TRANSFER: source block id and payload size in words per row.
    tag:
        Cost attribution label ("volume", "flux:inter", ...), the raw
        material of Figs. 13/14.
    """

    op: Opcode
    block: int | None = None
    rows: tuple = (0, 0)
    dst: int | None = None
    src1: int | None = None
    src2: int | None = None
    row_map: object = None
    n_unique_rows: int | None = None
    value: object = None
    src_block: int | None = None
    src_rows: tuple | None = None
    words: int = 1
    count: int = 1
    tag: str = ""
    meta: dict = field(default_factory=dict)

    @property
    def n_rows(self) -> int:
        if isinstance(self.rows, tuple):
            return max(0, self.rows[1] - self.rows[0])
        return len(self.rows)

    def __post_init__(self):
        if not isinstance(self.op, Opcode):
            raise TypeError(f"op must be an Opcode, got {type(self.op)}")


def barrier(tag: str = "sync") -> Instruction:
    """A BARRIER phase-synchronization marker."""
    return Instruction(Opcode.BARRIER, tag=tag)


class LutInstructionFormat:
    """Encoder/decoder for the paper's 64-bit LUT instruction (Fig. 4)."""

    OPCODE_BITS = 7
    ROW_BITS = 26
    OFFSET_BITS = 5
    LUT_BLOCK_BITS = 21

    OPCODE_SHIFT = 57
    ROW_SHIFT = 31
    OFFSET_S_SHIFT = 26
    LUT_BLOCK_SHIFT = 5
    OFFSET_D_SHIFT = 0

    #: The opcode value that "differentiates look-up table instructions
    #: from other PIM instructions" (§4.3).
    LUT_OPCODE = 0b1010101

    @classmethod
    def encode(cls, row_id: int, offset_s: int, lut_block_id: int, offset_d: int,
               opcode: int | None = None) -> int:
        opcode = cls.LUT_OPCODE if opcode is None else opcode
        for name, val, bits in (
            ("opcode", opcode, cls.OPCODE_BITS),
            ("row_id", row_id, cls.ROW_BITS),
            ("offset_s", offset_s, cls.OFFSET_BITS),
            ("lut_block_id", lut_block_id, cls.LUT_BLOCK_BITS),
            ("offset_d", offset_d, cls.OFFSET_BITS),
        ):
            if not 0 <= val < (1 << bits):
                raise ValueError(f"{name}={val} does not fit in {bits} bits")
        return (
            (opcode << cls.OPCODE_SHIFT)
            | (row_id << cls.ROW_SHIFT)
            | (offset_s << cls.OFFSET_S_SHIFT)
            | (lut_block_id << cls.LUT_BLOCK_SHIFT)
            | (offset_d << cls.OFFSET_D_SHIFT)
        )

    @classmethod
    def decode(cls, word: int) -> dict:
        if not 0 <= word < (1 << 64):
            raise ValueError("LUT instruction must be a 64-bit word")
        mask = lambda bits: (1 << bits) - 1  # noqa: E731
        return {
            "opcode": (word >> cls.OPCODE_SHIFT) & mask(cls.OPCODE_BITS),
            "row_id": (word >> cls.ROW_SHIFT) & mask(cls.ROW_BITS),
            "offset_s": (word >> cls.OFFSET_S_SHIFT) & mask(cls.OFFSET_BITS),
            "lut_block_id": (word >> cls.LUT_BLOCK_SHIFT) & mask(cls.LUT_BLOCK_BITS),
            "offset_d": (word >> cls.OFFSET_D_SHIFT) & mask(cls.OFFSET_BITS),
        }
