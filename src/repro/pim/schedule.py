"""MASIM-style multi-array makespan scheduler for execution plans.

Emission order is execution order: the executor updates shared clocks
(block transfer ports, interconnect switches, the host/DRAM channels) in
the order instructions are dispatched, so a TRANSFER emitted before an
independent compute op can gate that op on the destination's write port
even though no data flows between them.  MASIM's multi-array scheduling
observation (PAPERS.md) applies directly: with the dependency DAG in hand,
a list scheduler can reorder the stream so independent work overlaps —
compute slides ahead of transfers it does not consume, transfers on
disjoint routes interleave, and the modeled makespan (the executor's own
``total_time_s``) drops while every data dependency still holds.

Pipeline:

1. :func:`dependency_edges` builds the inter-instruction DAG from the
   same word-region model the dataflow checker uses
   (:func:`repro.analysis.checker.accesses`): RAW/WAW/WAR edges over
   per-``(block, column)`` access histories (row-interval overlap,
   covered-writer pruning), serial chains for the host and DRAM channels,
   and BARRIER as a full fence.  :func:`dependency_graph` wraps the same
   edges with successor lists and topological bookkeeping for consumers
   that walk the DAG both ways (the perf analyzer, PL004).
2. :func:`schedule_order` runs greedy critical-path list scheduling over
   a resource model that mirrors the executor's timing semantics (block
   clocks, transfer ports, switch occupancy, host/DRAM channels): among
   ready instructions, earliest modeled start wins, critical-path length
   breaks ties, emission index makes it deterministic.
3. :func:`schedule_plan` re-lowers the reordered stream, measures both
   orders by *real replay* (fresh clocks, analytic mode) and keeps the
   scheduled plan only if it strictly improves — the emission-order plan
   is the fallback, so a scheduled plan never loses to its baseline.

Legality is auditable: PL004 (:mod:`repro.analysis.lowering`) recomputes
the DAG and verifies the scheduler's permutation respects every edge.

Cost bounds (the static half of the predict-then-measure loop,
DESIGN.md §15): :func:`earliest_starts` computes a per-instruction
earliest-start bound and :func:`critical_path_span` the dependency span —
both *sound* lower bounds valid for **any** legal order, because edges
carry only the latency the executor actually enforces.  A dependency
edge ``i -> j`` constrains ``j``'s start only through the clock entries
``i`` publishes **and** ``j`` consults (a TRANSFER frees its source read
port after ``read_t + flit_train``, long before its write-back; a
transfer chained through a block the predecessor only wrote via its
*write* port is not gated at all).  The edge latency is therefore the
maximum published latency over the intersection of ``i``'s published and
``j``'s consulted entries — zero-intersection edges are ordering-only
and propagate nothing.  ``repro.analysis.perf`` builds the full
work/span/occupancy bound family on top of these primitives.

Scheduling changes the *order* of clock updates, so a scheduled plan's
TimingReport legitimately differs from emission order — that is the
point.  Fault-injecting runs consume seeded RNG streams in instruction
order, so the compiler only schedules fault-free pipelines (digests stay
comparable across runs); a scheduled plan replayed under a fault model is
still *correct*, it just draws in the new order.

The ``REPRO_SCHED`` knob (default **off**; ``on``/``1``/``true``/``yes``
enables) gates the compiler's use of the scheduler; ``repro bench
--schedule`` and the perf-guard flip it per run.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.pim.isa import Instruction, Opcode
from repro.pim.plan import (
    ExecutionPlan,
    STEP_TRANSFER,
    lower_program,
)

if TYPE_CHECKING:
    from repro.pim.executor import ChipExecutor

__all__ = [
    "DependencyGraph",
    "audit_reorder",
    "critical_path_span",
    "dependency_edges",
    "dependency_graph",
    "earliest_starts",
    "plan_slack",
    "schedule_enabled",
    "schedule_order",
    "schedule_plan",
    "sim_items",
    "verify_order",
    "verify_resource_model",
]

_INF = float("inf")

#: one resource-model item per instruction; heterogeneous tuples tagged by
#: their first element ("c"/"t"/"l"/"h"/"d"/"b") — see :func:`sim_items`.
Item = Tuple[Any, ...]

#: a clock-entry key: ``("b", block)`` block clock, ``("r"/"w", block)``
#: transfer port, ``("s", switch_key)`` switch, ``"host"``/``"dram"``.
ClockKey = Hashable


def schedule_enabled() -> bool:
    """The ``REPRO_SCHED`` knob: default off, ``on``/``1``/``true``/``yes`` enables."""
    return os.environ.get("REPRO_SCHED", "off").strip().lower() in (
        "on", "1", "true", "yes",
    )


# --------------------------------------------------------------------- #
# dependency DAG
# --------------------------------------------------------------------- #

def _row_bounds(rows: Any) -> Tuple[float, float]:
    """Conservative ``[lo, hi)`` row-interval of a selector (None = whole block)."""
    if rows is None:
        return (0.0, _INF)
    if isinstance(rows, tuple):
        return (float(rows[0]), float(rows[1]))
    arr = np.asarray(rows)
    if arr.size == 0:
        return (0.0, 0.0)
    return (float(arr.min()), float(arr.max()) + 1.0)


def dependency_edges(instructions: Sequence[Instruction]) -> List[List[int]]:
    """Predecessor lists of the inter-instruction dependency DAG.

    ``preds[j]`` holds every ``i < j`` that must execute before ``j``:

    * RAW/WAW/WAR over the word regions of :func:`~repro.analysis.checker.
      accesses`, tracked per ``(block, column)`` with row-interval overlap
      (index-array selectors widen to their ``[min, max]`` hull — a
      conservative over-approximation that can only add edges);
    * serial chains on the host channel (HOSTOP order) and the DRAM
      channel (DRAM_LOAD/STORE order) — DRAM staging additionally pins the
      whole target block, mirroring the executor's clock coupling;
    * BARRIER as a full fence: it follows everything since the previous
      fence and precedes everything after it.

    A write that fully covers an earlier access prunes it from the
    history (its ordering survives transitively through the covering
    write), which keeps histories short on kernel streams that overwrite
    the same working columns every stage.
    """
    # imported lazily: repro.analysis imports the executor package.
    from repro.analysis.checker import accesses

    n = len(instructions)
    preds: List[List[int]] = [[] for _ in range(n)]
    writers: Dict[Hashable, List[Tuple[int, float, float]]] = {}
    readers: Dict[Hashable, List[Tuple[int, float, float]]] = {}
    block_keys: Dict[Any, Set[Hashable]] = {}  # block -> history keys seen
    fence: Optional[int] = None
    region: List[int] = []
    host_chain: Optional[int] = None
    dram_chain: Optional[int] = None

    def keys_for(block: Any, col: Optional[int], words: int) -> List[Hashable]:
        ks: List[Hashable] = [(block, "*")] if col is None else [
            (block, c) for c in range(col, col + words)
        ]
        seen = block_keys.setdefault(block, set())
        for k in ks:
            seen.add(k)
        if col is None:
            # a whole-block access conflicts with every column touched so far
            return sorted(seen, key=str)
        if (block, "*") in seen:
            ks.append((block, "*"))
        return ks

    for j, inst in enumerate(instructions):
        op = inst.op
        dep: Set[int] = set()
        if fence is not None:
            dep.add(fence)
        if op is Opcode.BARRIER:
            dep.update(region)
            preds[j] = sorted(dep)
            fence = j
            region = []
            writers.clear()
            readers.clear()
            block_keys.clear()
            host_chain = None
            dram_chain = None
            continue
        region.append(j)
        if op is Opcode.HOSTOP:
            if host_chain is not None:
                dep.add(host_chain)
            host_chain = j
            preds[j] = sorted(dep)
            continue
        reads, writes = accesses(inst)
        if op in (Opcode.DRAM_LOAD, Opcode.DRAM_STORE):
            if dram_chain is not None:
                dep.add(dram_chain)
            dram_chain = j
            if inst.block is not None:
                # DRAM staging couples the whole block clock in the
                # executor: model it as a whole-block read+write.
                from repro.analysis.checker import Access

                whole = Access(inst.block, None, 1, None)
                reads = list(reads) + [whole]
                writes = list(writes) + [whole]
        for acc in reads:
            if acc.block is None:
                continue
            lo, hi = _row_bounds(acc.rows)
            for k in keys_for(acc.block, acc.col, acc.words):
                for i, wlo, whi in writers.get(k, ()):
                    if wlo < hi and lo < whi:
                        dep.add(i)
                readers.setdefault(k, []).append((j, lo, hi))
        for acc in writes:
            if acc.block is None:
                continue
            lo, hi = _row_bounds(acc.rows)
            for k in keys_for(acc.block, acc.col, acc.words):
                wh = writers.setdefault(k, [])
                rh = readers.setdefault(k, [])
                for i, wlo, whi in wh:
                    if wlo < hi and lo < whi:
                        dep.add(i)
                for i, rlo, rhi in rh:
                    if i != j and rlo < hi and lo < rhi:
                        dep.add(i)
                # covered-pruning: this write now transitively orders
                # everything it spans.
                wh[:] = [e for e in wh if not (lo <= e[1] and e[2] <= hi)]
                rh[:] = [e for e in rh if e[0] == j or not (lo <= e[1] and e[2] <= hi)]
                wh.append((j, lo, hi))
        preds[j] = sorted(dep)
    return preds


@dataclass
class DependencyGraph:
    """The inter-instruction dependency DAG, walkable both ways.

    ``preds[j]`` lists the instructions that must execute before ``j``
    (exactly :func:`dependency_edges`); ``succs`` is the transpose, built
    lazily.  Edges always point forward in emission order, so emission
    order *is* a topological order — consumers may walk ``range(n)``
    forward for earliest-start propagation and backward for
    critical-path/liveness sweeps without sorting.
    """

    preds: List[List[int]]
    _succs: Optional[List[List[int]]] = field(default=None, repr=False)

    @property
    def n(self) -> int:
        return len(self.preds)

    @property
    def succs(self) -> List[List[int]]:
        if self._succs is None:
            succs: List[List[int]] = [[] for _ in range(len(self.preds))]
            for j, ps in enumerate(self.preds):
                for i in ps:
                    succs[i].append(j)
            self._succs = succs
        return self._succs

    @property
    def n_edges(self) -> int:
        return sum(len(ps) for ps in self.preds)


def dependency_graph(instructions: Sequence[Instruction]) -> DependencyGraph:
    """Build the :class:`DependencyGraph` of ``instructions``."""
    return DependencyGraph(preds=dependency_edges(instructions))


def verify_order(preds: Sequence[Sequence[int]], order: Sequence[int]) -> List[str]:
    """Violations of ``order`` against the DAG (empty list = legal).

    Checks that ``order`` is a permutation of ``range(len(preds))`` and
    that every predecessor is placed before its dependent.
    """
    n = len(preds)
    out: List[str] = []
    if sorted(order) != list(range(n)):
        return [f"order is not a permutation of {n} instructions"]
    pos = [0] * n
    for p, i in enumerate(order):
        pos[i] = p
    for j in range(n):
        for i in preds[j]:
            if pos[i] >= pos[j]:
                out.append(
                    f"instruction {j} scheduled at slot {pos[j]} before its "
                    f"dependency {i} at slot {pos[i]}"
                )
    return out


# --------------------------------------------------------------------- #
# resource model (mirrors ChipExecutor timing semantics)
# --------------------------------------------------------------------- #

class _Sim:
    """Executor-faithful clock model used to guide the greedy choice.

    Mirrors ``ChipExecutor``'s per-block clocks, transfer ports, switch
    occupancy and host/DRAM channels (including BARRIER *not* resetting
    switch load).  Only guides the scheduler — final makespans come from
    real replay in :func:`schedule_plan`.
    """

    def __init__(self) -> None:
        self.block: Dict[Any, float] = {}
        self.sw: Dict[Hashable, float] = {}
        self.port: Dict[Tuple[str, Any], float] = {}
        self.host = 0.0
        self.dram = 0.0
        self.barrier = 0.0

    def _g(self, d: Dict[Any, float], k: Any) -> float:
        return d.get(k, 0.0)

    def now(self) -> float:
        vals = list(self.block.values()) + list(self.port.values())
        vals += [self.host, self.dram]
        return max(vals) if vals else 0.0

    def compute_start(self, b: Any) -> float:
        return max(
            self._g(self.block, b),
            self._g(self.port, ("r", b)),
            self._g(self.port, ("w", b)),
            self.barrier,
        )

    def est(self, item: Item) -> float:
        kind = item[0]
        if kind == "c":  # block-local compute
            return self.compute_start(item[1])
        if kind == "t":  # TRANSFER (payload is the plan's _TransferStep)
            t = item[1]
            ready = max(
                self._g(self.port, ("r", t.src)),
                self._g(self.port, ("w", t.dst)),
                self._g(self.block, t.src),
                self._g(self.block, t.dst),
                self.barrier,
            )
            for k in t.keys:
                ready = max(ready, self._g(self.sw, k))
            return ready
        if kind == "l":  # LUT micro-sequence
            _, _dur, req, lut, keys = item
            ready = max(self.compute_start(req), self.compute_start(lut))
            for k in keys:
                ready = max(ready, self._g(self.sw, k))
            return ready
        if kind == "h":
            return max(self.host, self.barrier)
        if kind == "d":
            start = max(self.dram, self.barrier)
            if item[2] is not None:
                start = max(start, self._g(self.block, item[2]))
            return start
        return self.now()  # barrier

    def commit(self, item: Item) -> None:
        kind = item[0]
        if kind == "c":
            _, b, dur = item
            self.block[b] = self.compute_start(b) + dur
        elif kind == "t":
            t = item[1]
            ready = self.est(item)
            finish = ready + t.dur
            if t.exclusive:
                held = ready + t.read_t + t.wire
                for k in t.keys:
                    self.sw[k] = held
            else:
                for k in t.keys:
                    self.sw[k] = self._g(self.sw, k) + t.flit_train
            self.port[("r", t.src)] = ready + t.read_t + t.flit_train
            self.port[("w", t.dst)] = finish
        elif kind == "l":
            _, dur, req, lut, keys = item
            finish = self.est(item) + dur
            self.port[("w", req)] = finish
            self.port[("r", lut)] = finish
            for k in keys:
                self.sw[k] = finish
        elif kind == "h":
            self.host = max(self.host, self.barrier) + item[1]
        elif kind == "d":
            _, dur, b = item
            finish = self.est(item) + dur
            self.dram = finish
            if b is not None:
                self.block[b] = finish
        else:  # barrier
            now = self.now()
            for b in self.block:
                self.block[b] = now
            for k2 in self.port:
                self.port[k2] = now
            self.host = now
            self.dram = now
            self.barrier = now


def sim_items(ex: "ChipExecutor", plan: ExecutionPlan) -> List[Item]:
    """One resource-model item per instruction, costs from the plan.

    The shared cost vocabulary of the scheduler, the slack/span bounds and
    the perf analyzer (:mod:`repro.analysis.perf`): ``("c", block, dur)``
    compute, ``("t", transfer_step)``, ``("l", dur, requester, lut_block,
    switch_keys)``, ``("h", dur)`` host, ``("d", dur, block)`` DRAM,
    ``("b",)`` barrier.
    """
    insts = plan.instructions
    durs = plan.array["dur"]
    transfers = iter(p for k, p in plan.steps if k == STEP_TRANSFER)
    items: List[Item] = []
    for i, inst in enumerate(insts):
        op = inst.op
        if op is Opcode.TRANSFER:
            items.append(("t", next(transfers)))
        elif op is Opcode.BARRIER:
            items.append(("b",))
        elif op is Opcode.HOSTOP:
            items.append(("h", ex.host.time_s(inst.count)))
        elif op in (Opcode.DRAM_LOAD, Opcode.DRAM_STORE):
            n_bytes = inst.meta.get("bytes", inst.words * 4 * max(inst.n_rows, 1))
            items.append(("d", ex.chip.hbm.transfer_time_s(n_bytes), inst.block))
        elif op is Opcode.LUT:
            dev = ex.costs.device
            keys, hops, extra, ic = ex.chip.transfer_path(inst.src_block, inst.block)
            per_row = (
                2 * dev.t_row_read_s + dev.t_row_write_s
                + 2 * (hops * ic.hop_latency_per_flit + extra)
            )
            items.append(("l", inst.n_rows * per_row, inst.block,
                          inst.src_block, tuple(keys)))
        else:
            items.append(("c", inst.block, float(durs[i])))
    return items


#: backward-compatible private alias (pre-§15 callers/tests).
_sim_items = sim_items


def _item_durations(items: Sequence[Item]) -> List[float]:
    """Modeled duration of each resource-model item (barrier: 0)."""
    return [
        float(it[2]) if it[0] == "c" else (float(it[1].dur) if it[0] == "t" else
                                           (0.0 if it[0] == "b" else float(it[1])))
        for it in items
    ]


# --------------------------------------------------------------------- #
# typed-latency earliest starts: the sound dependency span bound
# --------------------------------------------------------------------- #

def _publishes(item: Item, dur: float) -> List[Tuple[ClockKey, float]]:
    """Clock entries ``item`` writes, with latency relative to its start.

    Mirrors the executor's commit semantics exactly.  H-tree switch loads
    accumulate (``+= flit_train``) and carry no start-relative guarantee,
    so non-exclusive transfers publish nothing through their switches.
    """
    kind = item[0]
    if kind == "c":
        return [(("b", item[1]), dur)]
    if kind == "t":
        t = item[1]
        out: List[Tuple[ClockKey, float]] = [
            (("r", t.src), t.read_t + t.flit_train),
            (("w", t.dst), t.dur),
        ]
        if t.exclusive:
            out.extend((("s", k), t.read_t + t.wire) for k in t.keys)
        return out
    if kind == "l":
        _, d, req, lut, keys = item
        out = [(("w", req), d), (("r", lut), d)]
        out.extend((("s", k), d) for k in keys)
        return out
    if kind == "h":
        return [("host", dur)]
    if kind == "d":
        out = [("dram", dur)]
        if item[2] is not None:
            out.append((("b", item[2]), dur))
        return out
    return []  # barrier: handled via the fence special case


def _consults(item: Item) -> Set[ClockKey]:
    """Clock entries ``item``'s ready condition reads (executor semantics)."""
    kind = item[0]
    if kind == "c":
        b = item[1]
        return {("b", b), ("r", b), ("w", b)}
    if kind == "t":
        t = item[1]
        keys: Set[ClockKey] = {("r", t.src), ("w", t.dst),
                               ("b", t.src), ("b", t.dst)}
        keys.update(("s", k) for k in t.keys)
        return keys
    if kind == "l":
        _, _d, req, lut, lkeys = item
        keys = set()
        for b in (req, lut):
            keys.update({("b", b), ("r", b), ("w", b)})
        keys.update(("s", k) for k in lkeys)
        return keys
    if kind == "h":
        return {"host"}
    if kind == "d":
        keys = {"dram"}
        if item[2] is not None:
            keys.add(("b", item[2]))
        return keys
    return set()  # barrier: consults everything (special-cased)


def earliest_starts(
    ex: "ChipExecutor", plan: ExecutionPlan,
    preds: Optional[Sequence[Sequence[int]]] = None,
) -> np.ndarray:
    """Sound per-instruction earliest-start lower bounds (seconds).

    ``est[j]`` lower-bounds instruction ``j``'s modeled start under *any*
    execution order that respects the dependency DAG.  An edge ``i -> j``
    propagates ``est[i] + latency`` only through the clock entries ``i``
    publishes and ``j`` consults (the wait the executor actually
    enforces); edges whose entry sets do not intersect are ordering-only
    and propagate nothing — the executor never makes ``j`` wait for such
    an ``i``, so assuming it would could overshoot the measured run.

    BARRIER is exact both ways: its own start is ``max(est[i] + dur[i])``
    over its region (it waits on ``now()``, which sees every completed
    duration through a now-visible clock), and every later instruction
    consults the floor it raises.
    """
    insts = plan.instructions
    n = len(insts)
    if preds is None:
        preds = dependency_edges(insts)
    items = sim_items(ex, plan)
    dur_of = _item_durations(items)
    pubs = [_publishes(it, d) for it, d in zip(items, dur_of)]
    cons = [_consults(it) for it in items]
    est = np.zeros(n)
    for j in range(n):
        e = 0.0
        if items[j][0] == "b":
            for i in preds[j]:
                c = est[i] + dur_of[i]
                if c > e:
                    e = c
        else:
            cj = cons[j]
            for i in preds[j]:
                if items[i][0] == "b":
                    # the fence raised the barrier floor, which j consults.
                    if est[i] > e:
                        e = float(est[i])
                    continue
                best = -1.0
                for key, lat in pubs[i]:
                    if key in cj and lat > best:
                        best = lat
                if best >= 0.0:
                    c = est[i] + best
                    if c > e:
                        e = c
        est[j] = e
    return est


def critical_path_span(
    ex: "ChipExecutor", plan: ExecutionPlan,
    preds: Optional[Sequence[Sequence[int]]] = None,
) -> float:
    """Dependency-span lower bound on the plan's makespan, in seconds.

    ``max_j(est[j] + dur[j])`` over the typed earliest starts of
    :func:`earliest_starts`.  Sound for any legal order: every completed
    instruction leaves ``start + dur`` on a clock the executor's final
    ``now()`` reads (block clock for compute/DRAM-coupled ops, the write
    port for TRANSFER/LUT, the host/DRAM channel clocks), so the measured
    makespan can never fall below it.
    """
    items = sim_items(ex, plan)
    dur_of = _item_durations(items)
    est = earliest_starts(ex, plan, preds)
    if not len(est):
        return 0.0
    return float(np.max(est + np.asarray(dur_of)))


# --------------------------------------------------------------------- #
# cross-checks: the resource model vs the measured executor/counters
# --------------------------------------------------------------------- #

def verify_resource_model(ex: "ChipExecutor", plan: ExecutionPlan) -> List[str]:
    """Prove the scheduler's ``_Sim`` agrees with the measured executor.

    Walks the resource model over ``plan`` in emission order, then replays
    the same plan on a fresh hardware-counting executor and compares:
    every final clock (blocks, ports, switches, host, DRAM) and the
    makespan must match *exactly* — the scheduler prices instructions with
    the very semantics the executor charges — and the counters' totals
    must equal the TimingReport's interconnect aggregates with per-block
    busy time never exceeding the block's final clock.  Returns mismatch
    messages (empty list = the model, the executor and the counters agree).
    """
    from repro.pim.executor import ChipExecutor

    sim = _Sim()
    for item in sim_items(ex, plan):
        sim.commit(item)
    fresh = ChipExecutor(ex.chip, op_costs=ex.costs, host=ex.host, counters=True)
    report = fresh.run(plan, functional=False)
    out: List[str] = []

    def compare(what: str, modeled: Dict[Any, float], measured: Dict[Any, float],
                floor: float = 0.0) -> None:
        # The executor's clock dicts materialize entries on *read*
        # (defaultdict) and BARRIER then sweeps those entries up to `now`;
        # _Sim reads with .get and never creates them.  Both agree on the
        # *effective* value max(entry, barrier) every consumer observes, so
        # block/port entries compare through that floor — exactly, not
        # approximately.  Switches are not swept (floor stays 0).
        for key in sorted({*modeled, *measured}, key=str):
            a = max(modeled.get(key, 0.0), floor)
            b = max(measured.get(key, 0.0), floor)
            if a != b:
                out.append(
                    f"{what}[{key}]: resource model {a!r} != executor {b!r}"
                )

    if sim.barrier != fresh._barrier_time:
        out.append(
            f"barrier: model {sim.barrier!r} != executor {fresh._barrier_time!r}"
        )
    compare("block_clock", sim.block, dict(fresh._block_clock),
            floor=sim.barrier)
    compare("port_free", dict(sim.port), dict(fresh._port_free),
            floor=sim.barrier)
    compare("switch_free", sim.sw, dict(fresh._switch_free))
    if sim.host != fresh._host_clock:
        out.append(f"host clock: model {sim.host!r} != executor {fresh._host_clock!r}")
    if sim.dram != fresh._dram_clock:
        out.append(f"dram clock: model {sim.dram!r} != executor {fresh._dram_clock!r}")
    if sim.now() != report.total_time_s:
        out.append(
            f"makespan: model {sim.now()!r} != measured {report.total_time_s!r}"
        )

    cnt = fresh.counters
    assert cnt is not None
    for name, measured_n, reported_n in (
        ("transfers", cnt.transfers, report.transfers),
        ("flits", cnt.flits, report.flits),
        ("hops", cnt.hops, report.hops),
        ("bytes_moved", cnt.bytes_moved, report.bytes_moved),
    ):
        if measured_n != reported_n:
            out.append(
                f"counters.{name} {measured_n} != report.{name} {reported_n}"
            )
    for b, busy in cnt.block_busy_s.items():
        occupied = busy + cnt.block_stage_s.get(b, 0.0)
        clock = fresh._block_clock.get(b, 0.0)
        if occupied > clock * (1.0 + 1e-9) + 1e-15:
            out.append(
                f"block {b} occupancy {occupied!r} exceeds its clock {clock!r}"
            )
    return out


def plan_slack(
    ex: "ChipExecutor", plan: ExecutionPlan,
    preds: Optional[Sequence[Sequence[int]]] = None,
) -> np.ndarray:
    """Per-instruction scheduler slack, in seconds (emission order).

    ``slack[j]`` is the instruction's modeled start under the emission
    order (the ``_Sim`` walk) minus its critical-path earliest start (the
    resource-free DAG bound ``est[j] = max over preds(est[i] + dur[i])``).
    Zero means the instruction sits on the critical path as emitted; large
    values mark work the scheduler (or a future multi-chip sharding) could
    pull earlier.  Always >= 0 up to float rounding: resources only ever
    delay an instruction past its dependency bound.
    """
    insts = plan.instructions
    n = len(insts)
    if preds is None:
        preds = dependency_edges(insts)
    items = sim_items(ex, plan)
    dur_of = _item_durations(items)
    sim = _Sim()
    starts = np.empty(n)
    for j, item in enumerate(items):
        starts[j] = sim.est(item)
        sim.commit(item)
    earliest = np.zeros(n)
    for j in range(n):
        ps = preds[j]
        if ps:
            earliest[j] = max(earliest[i] + dur_of[i] for i in ps)
    return starts - earliest


# --------------------------------------------------------------------- #
# greedy critical-path list scheduling
# --------------------------------------------------------------------- #

def schedule_order(
    ex: "ChipExecutor", plan: ExecutionPlan,
    preds: Optional[Sequence[Sequence[int]]] = None,
) -> List[int]:
    """Greedy list-scheduled instruction order (indices into the stream).

    Ready instructions compete on ``(modeled earliest start, critical-path
    length, emission index)`` — earliest start first, longer critical path
    breaks ties, emission index keeps it deterministic.  The heap uses
    lazy deletion: a popped candidate whose start estimate went stale
    (resources moved since it was pushed) is re-pushed with the fresh
    estimate instead of being committed.
    """
    insts = plan.instructions
    n = len(insts)
    if preds is None:
        preds = dependency_edges(insts)
    succs: List[List[int]] = [[] for _ in range(n)]
    indeg = [0] * n
    for j, ps in enumerate(preds):
        indeg[j] = len(ps)
        for i in ps:
            succs[i].append(j)

    items = sim_items(ex, plan)
    # critical-path length: edges always point forward in emission order,
    # so a reverse index walk is a reverse topological order.
    dur_of = _item_durations(items)
    cp = [0.0] * n
    for i in range(n - 1, -1, -1):
        tail = max((cp[j] for j in succs[i]), default=0.0)
        cp[i] = dur_of[i] + tail

    sim = _Sim()
    order: List[int] = []
    heap: List[Tuple[float, float, int]] = []
    for j in range(n):
        if indeg[j] == 0:
            heapq.heappush(heap, (sim.est(items[j]), -cp[j], j))
    while heap:
        est0, negcp, j = heapq.heappop(heap)
        est = sim.est(items[j])
        if est > est0 and heap and heap[0][0] < est:
            heapq.heappush(heap, (est, negcp, j))
            continue
        sim.commit(items[j])
        order.append(j)
        for s in succs[j]:
            indeg[s] -= 1
            if indeg[s] == 0:
                heapq.heappush(heap, (sim.est(items[s]), -cp[s], s))
    if len(order) != n:  # pragma: no cover - DAG is forward-only by construction
        raise RuntimeError("scheduler deadlock: dependency graph has a cycle")
    return order


# --------------------------------------------------------------------- #
# entry points
# --------------------------------------------------------------------- #

def _replay_makespan(ex: "ChipExecutor", plan: ExecutionPlan) -> float:
    """Modeled makespan of a plan: real analytic replay from cold clocks."""
    from repro.pim.executor import ChipExecutor

    fresh = ChipExecutor(ex.chip, op_costs=ex.costs, host=ex.host)
    return float(fresh.run(plan, functional=False).total_time_s)


def schedule_plan(ex: "ChipExecutor", plan: ExecutionPlan) -> ExecutionPlan:
    """Makespan-schedule ``plan``; returns the better of the two orders.

    Builds the dependency DAG, list-schedules, re-lowers the reordered
    stream and measures both plans by real replay.  The scheduled plan is
    kept only if it strictly beats emission order (best-of fallback:
    the result's modeled makespan is never worse than the input's).  The
    returned plan carries ``schedule_stats``::

        {"emission_makespan_s", "scheduled_makespan_s", "improvement",
         "kept", "n_reordered", "permutation"}
    """
    insts = plan.instructions
    preds = dependency_edges(insts)
    order = schedule_order(ex, plan, preds)
    emission_s = _replay_makespan(ex, plan)
    identity = order == list(range(len(insts)))
    stats: Dict[str, Any] = {
        "emission_makespan_s": emission_s,
        "scheduled_makespan_s": emission_s,
        "improvement": 1.0,
        "kept": False,
        "n_reordered": sum(1 for p, i in enumerate(order) if p != i),
        "permutation": order,
    }
    if not identity:
        violations = verify_order(preds, order)
        if violations:  # pragma: no cover - scheduler invariant
            raise RuntimeError(
                "illegal schedule: " + "; ".join(violations[:3])
            )
        sched = lower_program(ex.chip, ex.costs, [insts[i] for i in order])
        sched_s = _replay_makespan(ex, sched)
        if sched_s < emission_s:
            stats["scheduled_makespan_s"] = sched_s
            stats["improvement"] = emission_s / sched_s if sched_s > 0.0 else 1.0
            stats["kept"] = True
            sched.schedule_stats = stats
            return sched
    plan.schedule_stats = stats
    return plan


def audit_reorder(program: Sequence[Instruction], plan: ExecutionPlan,
                  chip: Any) -> List[str]:
    """PL004 helper: prove the scheduler's reordering of ``program`` is legal.

    Recomputes the dependency DAG, runs the list scheduler and verifies
    the resulting permutation respects every edge; any violation message
    becomes a PL004 finding.  An identity order is trivially legal.
    """
    from repro.pim.executor import ChipExecutor

    ex = ChipExecutor(chip)
    preds = dependency_edges(plan.instructions)
    order = schedule_order(ex, plan, preds)
    return verify_order(preds, order)
