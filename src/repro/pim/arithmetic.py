"""Bit-serial float32 operation costs, derived from the MAGIC NOR netlists.

The paper chooses 32-bit floating point for both PIM and GPU (§7.1) and
prices PIM arithmetic from FloatPIM-style bit-serial NOR sequences.  We
build the same pricing bottom-up: the measured full-adder cycle count from
:mod:`repro.pim.magic` plus standard datapath decompositions for the float
pipeline stages (exponent handling, alignment/normalization barrel shifts,
mantissa add/multiply).  The decomposition is written out in
:func:`float32_add_nors` / :func:`float32_mul_nors` so every term is
auditable; tests pin the mantissa-core terms to the *measured* NOR counts.

Complicated operations — square root and inverse — are **not** priced here:
the paper offloads them to the host CPU and serves results through look-up
tables (§4.3, §5.1); see :class:`HostOpModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pim.magic import FULL_ADDER_STEPS, int_add_steps, int_multiply_steps
from repro.pim.params import DEFAULT_DEVICE, DeviceParams

__all__ = [
    "float32_add_nors",
    "float32_mul_nors",
    "float32_mul_nors_serial",
    "OpCosts",
    "HostOpModel",
    "default_op_costs",
    "MANTISSA_BITS",
    "EXPONENT_BITS",
]

MANTISSA_BITS = 24  # incl. the implicit leading 1
EXPONENT_BITS = 8

#: NOR cycles of a 2:1 bit multiplexer (select + two masked terms + merge).
_MUX_STEPS = 4


def _barrel_shift_nors(bits: int) -> int:
    """Barrel shifter: log2 stages of per-bit 2:1 muxes."""
    stages = max(1, (bits - 1).bit_length())
    return stages * bits * _MUX_STEPS


def float32_add_nors() -> int:
    """NOR cycles of one float32 addition (per row, all rows in parallel).

    exponent difference + operand swap + mantissa alignment + 25-bit add +
    leading-zero detect + normalization + exponent adjust.
    """
    exp_diff = int_add_steps(EXPONENT_BITS) + EXPONENT_BITS + 1  # sub = invert + add + 1
    swap = 32 * _MUX_STEPS
    align = _barrel_shift_nors(MANTISSA_BITS)
    mantissa_add = int_add_steps(MANTISSA_BITS + 1)
    lzd = MANTISSA_BITS * 3
    normalize = _barrel_shift_nors(MANTISSA_BITS)
    exp_adjust = int_add_steps(EXPONENT_BITS)
    return exp_diff + swap + align + mantissa_add + lzd + normalize + exp_adjust


def float32_mul_nors_serial() -> int:
    """NOR cycles of a fully bit-serial float32 multiplication.

    exponent add (+bias fix) + 24x24 shift-add mantissa multiply + 1-bit
    normalize.  This is the naive in-row algorithm; kept for the ablation
    benchmark against the FloatPIM-style multiplier below.
    """
    exp_add = 2 * int_add_steps(EXPONENT_BITS)
    mantissa_mul = int_multiply_steps(MANTISSA_BITS)
    normalize = MANTISSA_BITS * _MUX_STEPS + int_add_steps(EXPONENT_BITS)
    return exp_add + mantissa_mul + normalize


def float32_mul_nors() -> int:
    """NOR cycles of the FloatPIM-style float32 multiplication.

    FloatPIM (the paper's cost source, [26]) forms the 24 partial products
    *in parallel across spare rows* (operand replication is a broadcast)
    and reduces them with a log-depth adder tree, turning the O(N^2)
    serial shift-add into ~log2(N) row-parallel additions:

    * partial products: one NOR per bit column           = 24
    * reduction tree: ceil(log2 24) = 5 levels of ~36-bit adds
    * exponent add + bias fix, 1-bit normalize + exponent adjust

    The mantissa core still dominates — the reason compute-intense
    Elastic-Riemann gains least from PIM (§7.3) — but is ~3x cheaper than
    the serial form.
    """
    exp_add = 2 * int_add_steps(EXPONENT_BITS)
    partial_products = MANTISSA_BITS
    tree_levels = (MANTISSA_BITS - 1).bit_length()
    reduction = tree_levels * int_add_steps(36)
    normalize = MANTISSA_BITS * _MUX_STEPS + int_add_steps(EXPONENT_BITS)
    return exp_add + partial_products + reduction + normalize


@dataclass(frozen=True)
class OpCosts:
    """Latency/energy of row-parallel PIM operations.

    An arithmetic instruction executes simultaneously in every active row
    of every participating block; its *latency* is the NOR-cycle count
    times ``T_NOR`` regardless of row count, while its *energy* scales
    with the number of active rows.
    """

    device: DeviceParams = field(default_factory=lambda: DEFAULT_DEVICE)
    nors: dict = field(
        default_factory=lambda: {
            "add": float32_add_nors(),
            "sub": float32_add_nors() + MANTISSA_BITS + 1,  # negate then add
            "mul": float32_mul_nors(),
            "mul_serial": float32_mul_nors_serial(),
            "cmp": int_add_steps(32),
            "iadd32": int_add_steps(32),
            "imul16": int_multiply_steps(16),
        }
    )

    def nor_count(self, op: str) -> int:
        try:
            return self.nors[op]
        except KeyError:
            raise KeyError(f"unknown PIM arithmetic op {op!r}") from None

    def time_s(self, op: str) -> float:
        """Latency of one row-parallel instruction."""
        return self.nor_count(op) * self.device.t_nor_s

    def energy_j(self, op: str, active_rows: int = 1) -> float:
        """Switching energy of a row-parallel arithmetic instruction.

        Each NOR RESET-initializes its output cell and then evaluates
        (conditionally switching it), so we charge ``E_reset + E_NOR`` per
        NOR per active row; SET events belong to data writes, which are
        priced separately in :meth:`row_move_energy_j`.
        """
        per_row = self.nor_count(op) * (self.device.e_reset_j + self.device.e_nor_j)
        return per_row * active_rows

    # -- row data movement ---------------------------------------------- #

    def row_move_time_s(self, n_rows: int) -> float:
        """Serial row-by-row move: one read + one write per row."""
        return n_rows * (self.device.t_row_read_s + self.device.t_row_write_s)

    def gather_time_s(self, n_unique_sources: int) -> float:
        """Intra-block gather through the column buffer.

        The block has row *and column* drivers (§4.1): the decoder reads
        each *unique* source row once into the column buffer and then
        writes the whole destination column in one column-parallel write.
        Derivative-tap gathers touch one source row per GLL line (64 for
        the 512-node element) and coefficient gathers only N+1 storage
        rows, so staging stops dominating the Volume kernel.
        """
        return n_unique_sources * self.device.t_row_read_s + self.device.t_row_write_s

    def row_move_energy_j(self, n_rows: int, words: int = 1) -> float:
        """One search per row read plus set/reset of the written word bits."""
        bits = 32 * words
        per_row = self.device.e_search_j + bits * 0.5 * (
            self.device.e_set_j + self.device.e_reset_j
        )
        return n_rows * per_row

    def broadcast_time_s(self, n_rows: int) -> float:
        """Writing one constant column into ``n_rows`` rows (serial writes)."""
        return n_rows * self.device.t_row_write_s

    @property
    def mean_flop_time_s(self) -> float:
        """§7.1 throughput workload: 50% additions, 50% multiplications."""
        return 0.5 * (self.time_s("add") + self.time_s("mul"))


@dataclass(frozen=True)
class HostOpModel:
    """The host CPU that pre-processes sqrt/inverse for the LUTs (§4.3).

    An ARM Cortex-A72 at ~1.5 GHz with NEON: 4-wide vsqrt/vrecpe pipelines
    sustain roughly one scalar result per 2-3 cycles when streaming, so we
    charge 1.5 ns per scalar op; the Table 3 host power is 3.06 W while
    busy.  (The Fig. 13 pipeline hides this lane under Volume.)
    """

    time_per_op_s: float = 1.5e-9
    power_w: float = 3.06

    def time_s(self, n_ops: int) -> float:
        return n_ops * self.time_per_op_s

    def energy_j(self, n_ops: int) -> float:
        return self.time_s(n_ops) * self.power_w


def default_op_costs(device: DeviceParams | None = None) -> OpCosts:
    """The cost table used throughout unless a config overrides the device."""
    return OpCosts(device=device or DEFAULT_DEVICE)
