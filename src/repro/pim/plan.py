"""Execution plans: lower an instruction stream once, replay it cheaply.

Wave simulation replays the same per-element instruction streams every
RK stage of every time-step (§4–§5), yet per-instruction dispatch pays the
full Python interpretation cost on every replay.  :func:`lower_program`
compiles a stream *once* into an :class:`ExecutionPlan` — numpy structured
arrays of ``(opcode, block, tag id, duration, energy, flits, hops)`` with
every TRANSFER's route resolved per unique ``(src, dst)`` pair up front —
so :meth:`repro.pim.executor.ChipExecutor.run` on a plan becomes a few
vectorized segment reductions plus a per-block prefix-max clock advance
instead of thousands of Python dispatches.

Bit-identity contract
---------------------
The plan path must produce a :class:`~repro.pim.executor.TimingReport`
*bit-identical* to serial dispatch.  Three invariants make that possible:

1. Compute opcodes (ADD/SUB/MUL/COPY/GATHER/BROADCAST) only read the
   block clock, the block's two transfer ports and the barrier floor —
   and only write the block clock.  Ports/barrier change exclusively at
   *coupling* opcodes (TRANSFER/LUT/HOSTOP/DRAM/BARRIER), so inside a
   maximal run of compute ops (a *segment*) each block's clock advances
   by a pure left-fold of durations from ``max(clock, port_r, port_w,
   barrier)`` — exactly what serial dispatch computes (after the first
   op the clock already dominates the unchanged port values).
2. Report accumulators (per-tag time/energy, total dynamic energy) are
   independent left-folds over the same addend sequence in stream order;
   :func:`fold_array` replays the exact serial addition order (mirroring
   ``executor._fold_add``: a Python loop for short runs, a strict
   ``np.add.accumulate`` — never pairwise ``np.sum`` — beyond that).
3. Every per-instruction float (durations, energies, wire latencies) is
   precomputed at lower time with the *same expression and association
   order* as the serial opcode handlers, so replay only re-executes the
   data-dependent ``max``/update logic.

Coupling opcodes keep their serial handlers: TRANSFER gets a precomputed
fast-path row (route, flit count and phase latencies resolved at lower
time); LUT/HOSTOP/DRAM/BARRIER dispatch through the executor unchanged.

The plan path is analytic-only.  ``functional=True`` (real data movement)
or an attached :class:`~repro.faults.model.FaultModel` (per-instruction
draws) fall back to serial dispatch over ``plan.instructions``.  A plan
records the chip's ``routing_epoch`` at lower time; if spare-block
remapping has invalidated the routes since, the executor re-lowers
instead of replaying stale paths.

The ``REPRO_PLAN`` environment knob (default on; ``off``/``0``/``false``
disables) gates the compiler's use of the plan path.
"""

from __future__ import annotations

import os
from collections import Counter
from typing import TYPE_CHECKING, List, Sequence

import numpy as np

from repro.pim.isa import ARITHMETIC_OPS, Instruction, Opcode

if TYPE_CHECKING:
    from repro.pim.arithmetic import OpCosts
    from repro.pim.chip import PimChip

__all__ = [
    "COPY_NORS",
    "ExecutionPlan",
    "PLAN_DTYPE",
    "OP_IDS",
    "fold_array",
    "lower_program",
    "plan_enabled",
    "VECTORIZABLE_OPS",
]

#: NOR cycles of a row-parallel column-to-column copy (two cascaded NOTs).
#: Canonical home of the constant the executor re-exports as ``_COPY_NORS``.
COPY_NORS = 2

#: Opcodes whose timing touches only the owning block's clock — the ones a
#: segment may vectorize.  Everything else couples clocks (ports, switches,
#: host, DRAM, barrier) and ends the segment.
VECTORIZABLE_OPS = frozenset(ARITHMETIC_OPS) | {
    Opcode.COPY, Opcode.GATHER, Opcode.BROADCAST,
}

#: One row per instruction: opcode id, owning block (-1 when None), interned
#: tag id, analytic duration/energy (zero for dispatch-handled rows) and the
#: TRANSFER interconnect footprint.
PLAN_DTYPE = np.dtype([
    ("op", np.uint8),
    ("block", np.int32),
    ("tag", np.int16),
    ("dur", np.float64),
    ("energy", np.float64),
    ("flits", np.int32),
    ("hops", np.int32),
])

#: stable opcode -> small-int encoding for the structured array.
OP_IDS = {op: i for i, op in enumerate(Opcode)}
OP_LIST = tuple(Opcode)

#: plan step kinds (first element of each ``ExecutionPlan.steps`` entry).
STEP_SEGMENT = 0
STEP_TRANSFER = 1
STEP_DISPATCH = 2


def plan_enabled() -> bool:
    """The ``REPRO_PLAN`` knob: default on, ``off``/``0``/``false`` disables."""
    return os.environ.get("REPRO_PLAN", "on").strip().lower() not in (
        "off", "0", "false", "no",
    )


def fold_array(base: float, values: np.ndarray) -> float:
    """Left-fold the additions of ``values`` (in order) onto ``base``.

    Bit-identical to ``for v in values: base += v`` — the generalization of
    ``executor._fold_add`` to heterogeneous addends.  ``np.add.accumulate``
    is a strict sequential fold (it must produce every prefix), unlike
    ``np.sum``/``np.add.reduce`` whose pairwise re-association would break
    the bit-identity contract.
    """
    n = values.shape[0]
    if n <= 64:
        for v in values:
            base += v
        return float(base)
    acc = np.empty(n + 1)
    acc[0] = base
    acc[1:] = values
    return float(np.add.accumulate(acc)[-1])


class _VecSegment:
    """A maximal run of compute ops, pre-grouped for vectorized replay."""

    __slots__ = ("n", "op_counts", "energies", "tag_groups", "block_groups")

    def __init__(self, array: np.ndarray, indices: range, insts: Sequence[Instruction]):
        self.n = len(indices)
        durs = array["dur"][indices.start:indices.stop]
        ens = array["energy"][indices.start:indices.stop]
        #: whole-segment energies in stream order (global dynamic-energy fold)
        self.energies = ens
        self.op_counts = Counter(
            insts[i].op.value for i in indices
        )
        # group positions by tag / block, preserving first-seen order so the
        # report dicts are populated in the same key order as serial dispatch
        by_tag: dict = {}
        by_block: dict = {}
        for pos, i in enumerate(indices):
            by_tag.setdefault(insts[i].tag, []).append(pos)
            by_block.setdefault(insts[i].block, []).append(pos)
        self.tag_groups = [
            (tag, durs[np.asarray(p, dtype=np.intp)], ens[np.asarray(p, dtype=np.intp)])
            for tag, p in by_tag.items()
        ]
        self.block_groups = [
            (block, durs[np.asarray(p, dtype=np.intp)])
            for block, p in by_block.items()
        ]


class _TransferStep:
    """A TRANSFER with its route and phase latencies resolved at lower time.

    Every float here is computed with the exact expression order of
    ``ChipExecutor._transfer`` (fault-free branch); replay re-runs only the
    readiness ``max`` and the switch/port updates.
    """

    __slots__ = (
        "src", "dst", "keys", "hops", "flits", "read_t", "write_t", "wire",
        "flit_train", "dur", "energy", "n_bytes", "exclusive", "tag", "op",
    )

    def __init__(self, inst: Instruction, chip: "PimChip", costs: "OpCosts"):
        src, dst = inst.src_block, inst.block
        if src is None:
            raise ValueError("TRANSFER needs src_block")
        dev = costs.device
        n_rows = inst.n_rows
        keys, hops, extra, ic = chip.transfer_path(src, dst)
        flits = -(-(n_rows * inst.words) // ic.flit_words)
        self.src = src
        self.dst = dst
        self.keys = tuple(keys)
        self.hops = hops
        self.flits = flits
        self.read_t = n_rows * dev.t_row_read_s
        self.write_t = n_rows * dev.t_row_write_s
        self.wire = hops * ic.hop_latency_per_flit * flits + extra
        self.flit_train = ic.hop_latency_per_flit * flits
        self.dur = self.read_t + self.wire + self.write_t
        energy = costs.row_move_energy_j(n_rows, words=inst.words)
        energy += hops * n_rows * inst.words * dev.e_search_j
        self.energy = energy
        self.n_bytes = n_rows * inst.words * 4
        self.exclusive = ic.exclusive
        self.tag = inst.tag
        self.op = inst.op


class ExecutionPlan:
    """A lowered instruction stream, replayable by ``ChipExecutor.run``.

    Keeps the original ``instructions`` (the fallback/verify path and the
    re-lowering after a routing-epoch bump both need them) next to the
    structured accounting ``array`` and the ordered ``steps`` the replay
    engine walks.
    """

    __slots__ = (
        "instructions", "array", "tags", "steps", "routing_epoch",
        "chip_name", "replays",
    )

    def __init__(self, instructions, array, tags, steps, routing_epoch, chip_name):
        self.instructions: List[Instruction] = instructions
        self.array: np.ndarray = array
        self.tags: List[str] = tags
        self.steps: list = steps
        #: ``PimChip.routing_epoch`` at lower time; a mismatch at run time
        #: means spare-block remapping moved a block and the resolved routes
        #: may be stale — the executor re-lowers instead of replaying them.
        self.routing_epoch: int = routing_epoch
        self.chip_name: str = chip_name
        #: number of times this plan has been replayed (plan-reuse metric).
        self.replays: int = 0

    @property
    def n_instructions(self) -> int:
        return len(self.instructions)

    @property
    def n_segments(self) -> int:
        return sum(1 for kind, _ in self.steps if kind == STEP_SEGMENT)

    @property
    def n_transfers(self) -> int:
        return sum(1 for kind, _ in self.steps if kind == STEP_TRANSFER)

    @property
    def n_dispatch(self) -> int:
        """Instructions the replay still hands to the serial dispatcher."""
        return sum(1 for kind, _ in self.steps if kind == STEP_DISPATCH)

    @property
    def vectorized_fraction(self) -> float:
        n = self.n_instructions
        if not n:
            return 0.0
        return 1.0 - (self.n_dispatch + self.n_transfers) / n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExecutionPlan({self.n_instructions} insts, "
            f"{self.n_segments} segments, {self.n_transfers} transfers, "
            f"{self.n_dispatch} dispatched, epoch={self.routing_epoch})"
        )


def lower_program(
    chip: "PimChip", costs: "OpCosts", instructions
) -> ExecutionPlan:
    """Lower ``instructions`` into an :class:`ExecutionPlan` for ``chip``.

    One O(n) Python pass: per-instruction analytic costs are computed with
    the serial handlers' exact expressions, TRANSFER routes are resolved
    through the chip's memoized path table (once per unique ``(src, dst)``
    pair), and maximal compute runs become :class:`_VecSegment` groups.
    """
    insts = list(instructions)
    n = len(insts)
    array = np.zeros(n, dtype=PLAN_DTYPE)
    tag_ids: dict = {}
    steps: list = []
    seg_start = -1  # start index of the open vec segment, -1 when closed
    dev = costs.device
    op_col = array["op"]
    block_col = array["block"]
    tag_col = array["tag"]
    dur_col = array["dur"]
    energy_col = array["energy"]

    def flush(end: int) -> None:
        nonlocal seg_start
        if seg_start >= 0:
            steps.append((STEP_SEGMENT, _VecSegment(array, range(seg_start, end), insts)))
            seg_start = -1

    for i, inst in enumerate(insts):
        op = inst.op
        op_col[i] = OP_IDS[op]
        block_col[i] = -1 if inst.block is None else inst.block
        tid = tag_ids.get(inst.tag)
        if tid is None:
            tid = tag_ids[inst.tag] = len(tag_ids)
        tag_col[i] = tid
        if op in VECTORIZABLE_OPS:
            # exact serial-handler cost expressions (see executor._arith &c.)
            if op in ARITHMETIC_OPS:
                dur = costs.time_s(op.value)
                energy = costs.energy_j(op.value, active_rows=inst.n_rows)
            elif op is Opcode.COPY:
                dur = COPY_NORS * dev.t_nor_s
                energy = COPY_NORS * 32 * dev.e_nor_j * inst.n_rows
            elif op is Opcode.GATHER:
                n_unique = inst.n_unique_rows
                if n_unique is None:
                    n_unique = len(np.unique(np.asarray(inst.row_map)))
                dur = costs.gather_time_s(n_unique)
                energy = costs.row_move_energy_j(inst.n_rows, words=inst.words)
            else:  # BROADCAST
                if np.asarray(inst.value).ndim == 0:
                    dur = 2 * dev.t_row_write_s
                else:
                    dur = costs.broadcast_time_s(inst.n_rows)
                energy = costs.row_move_energy_j(inst.n_rows, words=inst.words)
            dur_col[i] = dur
            energy_col[i] = energy
            if seg_start < 0:
                seg_start = i
            continue
        flush(i)
        if op is Opcode.TRANSFER:
            t = _TransferStep(inst, chip, costs)
            dur_col[i] = t.dur
            energy_col[i] = t.energy
            array["flits"][i] = t.flits
            array["hops"][i] = t.hops
            steps.append((STEP_TRANSFER, t))
        else:
            # LUT/HOSTOP/DRAM_*/BARRIER couple multiple clocks: replay
            # through the serial handlers, which stay the single source of
            # truth for their semantics.
            steps.append((STEP_DISPATCH, i))
    flush(n)

    tags = list(tag_ids)
    return ExecutionPlan(
        instructions=insts,
        array=array,
        tags=tags,
        steps=steps,
        routing_epoch=chip.routing_epoch,
        chip_name=chip.config.name,
    )
