"""Execution plans: lower an instruction stream once, replay it cheaply.

Wave simulation replays the same per-element instruction streams every
RK stage of every time-step (§4–§5), yet per-instruction dispatch pays the
full Python interpretation cost on every replay.  :func:`lower_program`
compiles a stream *once* into an :class:`ExecutionPlan` — numpy structured
arrays of ``(opcode, block, tag id, duration, energy, flits, hops, NOR
cycles, row count)`` with every TRANSFER's route resolved per unique
``(src, dst)`` pair up front — so
:meth:`repro.pim.executor.ChipExecutor.run` on a plan becomes a few
vectorized segment reductions plus a per-block prefix-max clock advance
instead of thousands of Python dispatches.

Plan replay is the *universal* execution path (DESIGN.md §13): analytic,
functional and fault-injecting runs all go through it.  Functional
replay executes each compute segment as a batched word-level program
against :class:`~repro.pim.block.MemoryBlock` state (built lazily by
:meth:`_VecSegment.build_apply`, hazard-split so column batching never
reorders a read past a write).  Fault-injecting replay pre-draws the
flip stream vectorized (:meth:`~repro.faults.model.FaultModel.draw_flips`
consumes the seeded generator bit-identically to per-instruction draws)
and walks segments per instruction with every cost precomputed.  Serial
dispatch survives only as the audit reference
(``ChipExecutor.run(..., serial=True)``).

Bit-identity contract
---------------------
The plan path must produce a :class:`~repro.pim.executor.TimingReport`
*bit-identical* to serial dispatch.  Three invariants make that possible:

1. Compute opcodes (ADD/SUB/MUL/COPY/GATHER/BROADCAST) only read the
   block clock, the block's two transfer ports and the barrier floor —
   and only write the block clock.  Ports/barrier change exclusively at
   *coupling* opcodes (TRANSFER/LUT/HOSTOP/DRAM/BARRIER), so inside a
   maximal run of compute ops (a *segment*) each block's clock advances
   by a pure left-fold of durations from ``max(clock, port_r, port_w,
   barrier)`` — exactly what serial dispatch computes (after the first
   op the clock already dominates the unchanged port values).
2. Report accumulators (per-tag time/energy, total dynamic energy) are
   independent left-folds over the same addend sequence in stream order;
   :func:`fold_array` replays the exact serial addition order (mirroring
   ``executor._fold_add``: a Python loop for short runs, a strict
   ``np.add.accumulate`` — never pairwise ``np.sum`` — beyond that).
3. Every per-instruction float (durations, energies, wire latencies) is
   precomputed at lower time with the *same expression and association
   order* as the serial opcode handlers, so replay only re-executes the
   data-dependent ``max``/update logic.

Coupling opcodes keep their serial handlers: TRANSFER gets a precomputed
fast-path row (route, flit count, phase latencies *and* the functional
row selectors resolved at lower time); LUT/HOSTOP/DRAM/BARRIER dispatch
through the executor unchanged.

A plan records the chip's ``routing_epoch`` at lower time; if spare-block
remapping has invalidated the routes since, the executor re-lowers
instead of replaying stale paths.

The ``REPRO_PLAN`` environment knob (default on; ``off``/``0``/``false``
disables) gates the compiler's use of the plan path; the scheduler knob
``REPRO_SCHED`` lives in :mod:`repro.pim.schedule`.
"""

from __future__ import annotations

import os
from collections import Counter
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.pim.isa import ARITHMETIC_OPS, Instruction, Opcode

if TYPE_CHECKING:
    from repro.pim.arithmetic import OpCosts
    from repro.pim.chip import PimChip

__all__ = [
    "COPY_NORS",
    "ExecutionPlan",
    "PLAN_DTYPE",
    "OP_IDS",
    "STEP_DISPATCH",
    "STEP_SEGMENT",
    "STEP_TRANSFER",
    "fold_array",
    "lower_program",
    "plan_enabled",
    "VECTORIZABLE_OPS",
]

#: NOR cycles of a row-parallel column-to-column copy (two cascaded NOTs).
#: Canonical home of the constant the executor re-exports as ``_COPY_NORS``.
COPY_NORS = 2

#: Opcodes whose timing touches only the owning block's clock — the ones a
#: segment may vectorize.  Everything else couples clocks (ports, switches,
#: host, DRAM, barrier) and ends the segment.
VECTORIZABLE_OPS = frozenset(ARITHMETIC_OPS) | {
    Opcode.COPY, Opcode.GATHER, Opcode.BROADCAST,
}

#: One row per instruction: opcode id, owning block (-1 when None), interned
#: tag id, analytic duration/energy (zero for dispatch-handled rows), the
#: TRANSFER interconnect footprint, and the fault-hook inputs (NOR cycles
#: of the op — nonzero only for arithmetic/COPY — plus the active row
#: count the flip/parity models scale with).
PLAN_DTYPE = np.dtype([
    ("op", np.uint8),
    ("block", np.int32),
    ("tag", np.int16),
    ("dur", np.float64),
    ("energy", np.float64),
    ("flits", np.int32),
    ("hops", np.int32),
    ("nors", np.int32),
    ("n_rows", np.int32),
])

#: stable opcode -> small-int encoding for the structured array.
OP_IDS = {op: i for i, op in enumerate(Opcode)}
OP_LIST = tuple(Opcode)

#: plan step kinds (first element of each ``ExecutionPlan.steps`` entry).
STEP_SEGMENT = 0
STEP_TRANSFER = 1
STEP_DISPATCH = 2

#: functional-apply op kinds (first element of a ``_VecSegment.apply`` row).
APPLY_ARITH = 0
APPLY_ARITH_BATCH = 1
APPLY_COPY = 2
APPLY_COPY_BATCH = 3
APPLY_GATHER = 4
APPLY_BROADCAST = 5

#: ufunc per arithmetic opcode: the batched apply computes the exact same
#: float32 elementwise operation as ``MemoryBlock.add``/``sub``/``mul``.
_APPLY_UFUNCS = {"add": np.add, "sub": np.subtract, "mul": np.multiply}


def plan_enabled() -> bool:
    """The ``REPRO_PLAN`` knob: default on, ``off``/``0``/``false`` disables."""
    return os.environ.get("REPRO_PLAN", "on").strip().lower() not in (
        "off", "0", "false", "no",
    )


def fold_array(base: float, values: np.ndarray) -> float:
    """Left-fold the additions of ``values`` (in order) onto ``base``.

    Bit-identical to ``for v in values: base += v`` — the generalization of
    ``executor._fold_add`` to heterogeneous addends.  ``np.add.accumulate``
    is a strict sequential fold (it must produce every prefix), unlike
    ``np.sum``/``np.add.reduce`` whose pairwise re-association would break
    the bit-identity contract.
    """
    n = values.shape[0]
    if n <= 64:
        for v in values:
            base += v
        return float(base)
    acc = np.empty(n + 1)
    acc[0] = base
    acc[1:] = values
    return float(np.add.accumulate(acc)[-1])


class _VecSegment:
    """A maximal run of compute ops, pre-grouped for vectorized replay."""

    __slots__ = (
        "n", "start", "stop", "op_counts", "energies", "tag_groups",
        "block_groups", "apply",
    )

    def __init__(self, array: np.ndarray, indices: range,
                 insts: Sequence[Instruction]) -> None:
        self.n = len(indices)
        self.start = indices.start
        self.stop = indices.stop
        durs = array["dur"][indices.start:indices.stop]
        ens = array["energy"][indices.start:indices.stop]
        nors = array["nors"][indices.start:indices.stop]
        #: whole-segment energies in stream order (global dynamic-energy fold)
        self.energies = ens
        self.op_counts = Counter(
            insts[i].op.value for i in indices
        )
        # group positions by tag / block, preserving first-seen order so the
        # report dicts are populated in the same key order as serial dispatch
        by_tag: Dict[str, List[int]] = {}
        by_block: Dict[Any, List[int]] = {}
        for pos, i in enumerate(indices):
            by_tag.setdefault(insts[i].tag, []).append(pos)
            by_block.setdefault(insts[i].block, []).append(pos)
        self.tag_groups = [
            (tag, durs[np.asarray(p, dtype=np.intp)], ens[np.asarray(p, dtype=np.intp)])
            for tag, p in by_tag.items()
        ]
        # per-block duration runs plus the hardware-counter aggregates
        # (NOR cycles issued / ops retired) precomputed at lower time, so
        # counters-enabled replay costs one dict update per group.
        self.block_groups = [
            (block, durs[sel], int(nors[sel].sum()), len(p))
            for block, p in by_block.items()
            for sel in (np.asarray(p, dtype=np.intp),)
        ]
        #: functional apply program, built lazily on the first functional
        #: replay (analytic replays never pay for it).
        self.apply: Optional[List[Tuple[Any, ...]]] = None

    def build_apply(self, insts: Sequence[Instruction],
                    chip: "PimChip") -> List[Tuple[Any, ...]]:
        """Compile this segment's functional effects into a batched program.

        Validation (row/column bounds, row-map shape) runs *once* here with
        the exact :class:`~repro.pim.block.MemoryBlock` checks, so replay
        applies raw numpy ops.  Consecutive same-opcode/-block/-row-range
        arithmetic/COPY ops collapse into one fancy-indexed column batch
        (``data[sel, dsts] = data[sel, s1s] op data[sel, s2s]``); a batch
        is flushed before any op that reads or rewrites a column the batch
        already writes, so RAW/WAW hazards keep serial semantics (WAR is
        safe: numpy materializes the whole right-hand side first).
        """
        prog: List[Tuple[Any, ...]] = []
        b_op: Optional[Opcode] = None
        b_block: Any = None
        b_rows: Optional[Tuple[int, int]] = None
        b_sel: Any = None
        b_dst: List[int] = []
        b_s1: List[int] = []
        b_s2: List[int] = []
        b_written: Set[int] = set()

        def flush() -> None:
            nonlocal b_op
            if b_op is None:
                return
            if len(b_dst) == 1:
                if b_op is Opcode.COPY:
                    prog.append((APPLY_COPY, b_block, b_sel, b_dst[0], b_s1[0]))
                else:
                    prog.append((APPLY_ARITH, b_block, b_sel,
                                 _APPLY_UFUNCS[b_op.value],
                                 b_dst[0], b_s1[0], b_s2[0]))
            elif b_op is Opcode.COPY:
                prog.append((APPLY_COPY_BATCH, b_block, b_sel,
                             np.asarray(b_dst), np.asarray(b_s1)))
            else:
                prog.append((APPLY_ARITH_BATCH, b_block, b_sel,
                             _APPLY_UFUNCS[b_op.value],
                             np.asarray(b_dst), np.asarray(b_s1),
                             np.asarray(b_s2)))
            b_op = None
            b_dst.clear()
            b_s1.clear()
            b_s2.clear()
            b_written.clear()

        for i in range(self.start, self.stop):
            inst = insts[i]
            op = inst.op
            blk = chip.block(inst.block)
            if op is Opcode.GATHER:
                flush()
                sel, n_sel = blk._rows(inst.rows)
                blk._check(inst.rows, inst.dst, inst.src1)
                row_map = np.asarray(inst.row_map, dtype=np.int64)
                if row_map.shape != (n_sel,):
                    raise ValueError(
                        f"row_map must have {n_sel} entries, got {row_map.shape}"
                    )
                if row_map.size and (
                    np.any(row_map < 0) or np.any(row_map >= blk.rows)
                ):
                    raise IndexError("row_map entry outside block")
                prog.append((APPLY_GATHER, inst.block, sel, inst.dst,
                             inst.src1, row_map))
                continue
            if op is Opcode.BROADCAST:
                flush()
                sel, n_sel = blk._rows(inst.rows)
                blk._check(inst.rows, inst.dst)
                value = np.asarray(inst.value, dtype=np.float32)
                if value.ndim not in (0, 1):
                    raise ValueError("broadcast value must be scalar or 1-D")
                if value.ndim == 1 and value.shape != (n_sel,):
                    raise ValueError(f"broadcast vector must have {n_sel} entries")
                prog.append((APPLY_BROADCAST, inst.block, sel, inst.dst, value))
                continue
            # arithmetic / COPY
            if op is Opcode.COPY:
                sel = blk._check(inst.rows, inst.dst, inst.src1)
                reads = (inst.src1,)
            else:
                sel = blk._check(inst.rows, inst.dst, inst.src1, inst.src2)
                reads = (inst.src1, inst.src2)
            rows_key = inst.rows if isinstance(inst.rows, tuple) else None
            if (b_op is not op or b_block != inst.block or rows_key is None
                    or b_rows != rows_key or inst.dst in b_written
                    or any(r in b_written for r in reads)):
                flush()
            if rows_key is None:
                # index-array row selector: apply singly (rare in practice)
                if op is Opcode.COPY:
                    prog.append((APPLY_COPY, inst.block, sel, inst.dst, inst.src1))
                else:
                    prog.append((APPLY_ARITH, inst.block, sel,
                                 _APPLY_UFUNCS[op.value],
                                 inst.dst, inst.src1, inst.src2))
                continue
            if b_op is None:
                b_op, b_block, b_rows, b_sel = op, inst.block, rows_key, sel
            b_dst.append(inst.dst)
            b_s1.append(inst.src1)
            if op is not Opcode.COPY:
                b_s2.append(inst.src2)
            b_written.add(inst.dst)
        flush()
        self.apply = prog
        return prog


class _TransferStep:
    """A TRANSFER with its route and phase latencies resolved at lower time.

    Every float here is computed with the exact expression order of
    ``ChipExecutor._transfer``; replay re-runs only the readiness ``max``,
    the switch/port updates and (fault mode) the retry arithmetic.  The
    functional row selectors are precomputed too, so functional replay
    indexes block state directly.
    """

    __slots__ = (
        "src", "dst", "keys", "hops", "flits", "read_t", "write_t", "wire",
        "flit_train", "dur", "energy", "n_bytes", "exclusive", "tag", "op",
        "n_rows", "words", "src1", "dst_col", "s_sel", "d_sel", "d_rows",
        "where", "n_switches",
    )

    def __init__(self, inst: Instruction, chip: "PimChip",
                 costs: "OpCosts",
                 template: Optional[Tuple[Any, ...]] = None) -> None:
        src, dst = inst.src_block, inst.block
        if src is None:
            raise ValueError("TRANSFER needs src_block")
        n_rows = inst.n_rows
        if template is None:
            template = _transfer_cost_template(chip, costs, src, dst,
                                               n_rows, inst.words)
        (self.keys, self.hops, self.flits, self.read_t, self.write_t,
         self.wire, self.flit_train, self.dur, self.energy, self.n_bytes,
         self.exclusive, self.n_switches) = template
        self.src = src
        self.dst = dst
        self.tag = inst.tag
        self.op = inst.op
        # functional / fault-mode inputs
        self.n_rows = n_rows
        self.words = inst.words
        self.src1 = inst.src1
        self.dst_col = inst.dst
        sr = inst.src_rows if inst.src_rows is not None else inst.rows
        self.s_sel = slice(sr[0], sr[1]) if isinstance(sr, tuple) else np.asarray(sr)
        self.d_sel = (
            slice(inst.rows[0], inst.rows[1])
            if isinstance(inst.rows, tuple)
            else np.asarray(inst.rows)
        )
        self.d_rows = inst.rows
        self.where = f"transfer:{src}->{dst}"


def _transfer_cost_template(chip: "PimChip", costs: "OpCosts", src: int,
                            dst: int, n_rows: int,
                            words: int) -> Tuple[Any, ...]:
    """Route + cost fields of a TRANSFER, keyed by ``(src, dst, n_rows, words)``.

    Factored out of :class:`_TransferStep` so :func:`lower_program` can
    memoize it per shape: a halo-heavy lowering emits thousands of
    TRANSFERs that differ only in row selectors, and re-deriving the same
    floats dominated the compile path (the ``compile_s`` drift satellite).
    The expressions are byte-for-byte the serial handler's, so memoized
    and direct construction are bit-identical.
    """
    dev = costs.device
    keys, hops, extra, ic = chip.transfer_path(src, dst)
    flits = -(-(n_rows * words) // ic.flit_words)
    read_t = n_rows * dev.t_row_read_s
    write_t = n_rows * dev.t_row_write_s
    wire = hops * ic.hop_latency_per_flit * flits + extra
    flit_train = ic.hop_latency_per_flit * flits
    dur = read_t + wire + write_t
    energy = costs.row_move_energy_j(n_rows, words=words)
    energy += hops * n_rows * words * dev.e_search_j
    return (tuple(keys), hops, flits, read_t, write_t, wire, flit_train,
            dur, energy, n_rows * words * 4, ic.exclusive, ic.n_switches)


class ExecutionPlan:
    """A lowered instruction stream, replayable by ``ChipExecutor.run``.

    Keeps the original ``instructions`` (the serial audit path and the
    re-lowering after a routing-epoch bump both need them) next to the
    structured accounting ``array`` and the ordered ``steps`` the replay
    engine walks.
    """

    __slots__ = (
        "instructions", "array", "tags", "steps", "routing_epoch",
        "chip_name", "replays", "schedule_stats", "flip_cache",
    )

    def __init__(self, instructions: List[Instruction], array: np.ndarray,
                 tags: List[str], steps: List[Tuple[int, Any]],
                 routing_epoch: int, chip_name: str) -> None:
        self.instructions: List[Instruction] = instructions
        self.array: np.ndarray = array
        self.tags: List[str] = tags
        self.steps: List[Tuple[int, Any]] = steps
        #: ``PimChip.routing_epoch`` at lower time; a mismatch at run time
        #: means spare-block remapping moved a block and the resolved routes
        #: may be stale — the executor re-lowers instead of replaying them.
        self.routing_epoch: int = routing_epoch
        self.chip_name: str = chip_name
        #: number of times this plan has been replayed (plan-reuse metric).
        self.replays: int = 0
        #: makespan bookkeeping attached by :func:`repro.pim.schedule.
        #: schedule_plan` (None for emission-order plans).
        self.schedule_stats: Optional[Dict[str, Any]] = None
        #: memoized flip-draw inputs: ``(flip_rate, eligible indices,
        #: per-instruction hit probabilities, eligible row counts)``.
        self.flip_cache: Optional[Tuple[Any, ...]] = None

    @property
    def n_instructions(self) -> int:
        return len(self.instructions)

    @property
    def n_segments(self) -> int:
        return sum(1 for kind, _ in self.steps if kind == STEP_SEGMENT)

    @property
    def n_transfers(self) -> int:
        return sum(1 for kind, _ in self.steps if kind == STEP_TRANSFER)

    @property
    def n_dispatch(self) -> int:
        """Instructions the replay still hands to the serial dispatcher."""
        return sum(1 for kind, _ in self.steps if kind == STEP_DISPATCH)

    @property
    def vectorized_fraction(self) -> float:
        n = self.n_instructions
        if not n:
            return 0.0
        return 1.0 - (self.n_dispatch + self.n_transfers) / n

    def footprint(self) -> Dict[str, Any]:
        """Resource totals of one replay, derived from the plan alone.

        An executor-independent cross-check for the hardware counters:
        per-block compute busy seconds (left-fold of segment durations, the
        same order replay folds them), per-block NOR cycles and compute-op
        counts, and the interconnect totals of the TRANSFER steps —
        including the per-switch occupancy the counters charge (the flit
        train on an h-tree route, the exclusive read+wire hold on a bus)
        under ``link_busy_s``/``link_flits``, the serial transfer time
        ``transfer_time_s`` (left-fold of TRANSFER durations, a ceiling on
        any one link's occupancy) and the vectorization profile
        ``segment_widths`` (instructions per segment, stream order).  LUT/
        HOSTOP/DRAM/BARRIER go through serial dispatch, so their footprint
        is reported separately as ``dispatch_ops`` — the perf analyzer
        (:mod:`repro.analysis.perf`) folds their link/channel occupancy in
        from the scheduler's resource items.
        """
        block_busy: Dict[Any, float] = {}
        block_nors: Dict[Any, int] = {}
        block_ops: Dict[Any, int] = {}
        link_busy: Dict[Hashable, float] = {}
        link_flits: Dict[Hashable, int] = {}
        segment_widths: List[int] = []
        transfers = flits = hops = n_bytes = 0
        transfer_time = 0.0
        dispatch_ops = 0
        for kind, payload in self.steps:
            if kind == STEP_SEGMENT:
                segment_widths.append(payload.n)
                for block, durs, nors, ops in payload.block_groups:
                    block_busy[block] = fold_array(block_busy.get(block, 0.0), durs)
                    block_nors[block] = block_nors.get(block, 0) + nors
                    block_ops[block] = block_ops.get(block, 0) + ops
            elif kind == STEP_TRANSFER:
                transfers += 1
                flits += payload.flits
                hops += payload.hops
                n_bytes += payload.n_bytes
                transfer_time += payload.dur
                # per-link occupancy, exactly as the counters charge it
                # (executor._transfer's link_busy argument).
                occ = (payload.read_t + payload.wire if payload.exclusive
                       else payload.flit_train)
                for k in payload.keys:
                    link_busy[k] = link_busy.get(k, 0.0) + occ
                    link_flits[k] = link_flits.get(k, 0) + payload.flits
            else:
                dispatch_ops += 1
        return {
            "block_busy_s": block_busy,
            "block_nors": block_nors,
            "block_ops": block_ops,
            "link_busy_s": link_busy,
            "link_flits": link_flits,
            "segment_widths": segment_widths,
            "transfers": transfers,
            "flits": flits,
            "hops": hops,
            "bytes_moved": n_bytes,
            "transfer_time_s": transfer_time,
            "dispatch_ops": dispatch_ops,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExecutionPlan({self.n_instructions} insts, "
            f"{self.n_segments} segments, {self.n_transfers} transfers, "
            f"{self.n_dispatch} dispatched, epoch={self.routing_epoch})"
        )


def lower_program(
    chip: "PimChip", costs: "OpCosts", instructions: Iterable[Instruction]
) -> ExecutionPlan:
    """Lower ``instructions`` into an :class:`ExecutionPlan` for ``chip``.

    One O(n) Python pass: per-instruction analytic costs are computed with
    the serial handlers' exact expressions, TRANSFER routes are resolved
    through the chip's memoized path table (once per unique ``(src, dst)``
    pair), and maximal compute runs become :class:`_VecSegment` groups.
    """
    insts = list(instructions)
    n = len(insts)
    array = np.zeros(n, dtype=PLAN_DTYPE)
    tag_ids: Dict[str, int] = {}
    xfer_templates: Dict[Tuple[int, Optional[int], int, int], Tuple[Any, ...]] = {}
    steps: List[Tuple[int, Any]] = []
    seg_start = -1  # start index of the open vec segment, -1 when closed
    dev = costs.device
    op_col = array["op"]
    block_col = array["block"]
    tag_col = array["tag"]
    dur_col = array["dur"]
    energy_col = array["energy"]
    nors_col = array["nors"]
    n_rows_col = array["n_rows"]
    # per-opcode constants, resolved once per lowering
    arith_dur = {op: costs.time_s(op.value) for op in ARITHMETIC_OPS}
    arith_nors = {op: costs.nor_count(op.value) for op in ARITHMETIC_OPS}
    copy_dur = COPY_NORS * dev.t_nor_s
    copy_e_unit = COPY_NORS * 32 * dev.e_nor_j

    def flush(end: int) -> None:
        nonlocal seg_start
        if seg_start >= 0:
            steps.append((STEP_SEGMENT, _VecSegment(array, range(seg_start, end), insts)))
            seg_start = -1

    for i, inst in enumerate(insts):
        op = inst.op
        op_col[i] = OP_IDS[op]
        block_col[i] = -1 if inst.block is None else inst.block
        tid = tag_ids.get(inst.tag)
        if tid is None:
            tid = tag_ids[inst.tag] = len(tag_ids)
        tag_col[i] = tid
        if op in VECTORIZABLE_OPS:
            # exact serial-handler cost expressions (see executor._arith &c.)
            n_rows = inst.n_rows
            if op in ARITHMETIC_OPS:
                dur = arith_dur[op]
                energy = costs.energy_j(op.value, active_rows=n_rows)
                nors_col[i] = arith_nors[op]
            elif op is Opcode.COPY:
                dur = copy_dur
                energy = copy_e_unit * n_rows
                nors_col[i] = COPY_NORS
            elif op is Opcode.GATHER:
                n_unique = inst.n_unique_rows
                if n_unique is None:
                    n_unique = len(np.unique(np.asarray(inst.row_map)))
                dur = costs.gather_time_s(n_unique)
                energy = costs.row_move_energy_j(n_rows, words=inst.words)
            else:  # BROADCAST
                if np.asarray(inst.value).ndim == 0:
                    dur = 2 * dev.t_row_write_s
                else:
                    dur = costs.broadcast_time_s(n_rows)
                energy = costs.row_move_energy_j(n_rows, words=inst.words)
            dur_col[i] = dur
            energy_col[i] = energy
            n_rows_col[i] = n_rows
            if seg_start < 0:
                seg_start = i
            continue
        flush(i)
        if op is Opcode.TRANSFER:
            tpl = None
            if inst.src_block is not None:
                key = (inst.src_block, inst.block, inst.n_rows, inst.words)
                tpl = xfer_templates.get(key)
                if tpl is None:
                    tpl = xfer_templates[key] = _transfer_cost_template(
                        chip, costs, inst.src_block, inst.block,
                        inst.n_rows, inst.words)
            t = _TransferStep(inst, chip, costs, template=tpl)
            dur_col[i] = t.dur
            energy_col[i] = t.energy
            array["flits"][i] = t.flits
            array["hops"][i] = t.hops
            n_rows_col[i] = t.n_rows
            steps.append((STEP_TRANSFER, t))
        else:
            # LUT/HOSTOP/DRAM_*/BARRIER couple multiple clocks: replay
            # through the serial handlers, which stay the single source of
            # truth for their semantics.
            steps.append((STEP_DISPATCH, i))
    flush(n)

    tags = list(tag_ids)
    return ExecutionPlan(
        instructions=insts,
        array=array,
        tags=tags,
        steps=steps,
        routing_epoch=chip.routing_epoch,
        chip_name=chip.config.name,
    )
