"""Multi-chip sharding with pipelined halo exchange.

The paper folds large meshes onto one chip by batching Morton chunks
through DRAM (Fig. 7) and pipelines fetch/pre-process/compute inside a
chip (Figs. 10/13).  This layer goes one step further, in the MASIM
direction of cross-array scheduling: the HexMesh is partitioned across N
simulated chips (contiguous Morton chunks, so shard boundaries are
compact element boxes), each shard lowers its own per-phase
:class:`~repro.pim.plan.ExecutionPlan`, and an inter-chip link model with
its own latency/bandwidth/energy prices the halo traffic.

Execution is phase-parallel per RK stage with a *pipelined* halo
exchange:

``volume(k+1)`` of every shard — which touches no neighbor data — runs
while the stage-``k`` face exchange is still in flight on the links; the
exchange only gates ``flux(k+1)`` (via :meth:`ChipExecutor.sync_at`).
Makespan is therefore computed from each shard's own persistent clocks
plus link occupancy, and the compute/exchange overlap is *measured* from
per-shard :class:`~repro.obs.counters.HardwareCounters` intervals
intersected with the link busy windows, not asserted from the schedule.

Correctness rests on a dataflow property of the kernel family: the flux
emitters fetch only the neighbor's *variable* columns, and variable
columns are written only by ``load_state`` and each stage's integration.
Exchanging ghost-element block state right after integration therefore
reproduces single-chip semantics bit-for-bit — verified by the PL005
halo-coverage audit (:mod:`repro.analysis.halo`) plus the N-shard ==
1-shard digest sweep in the tests.
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.mapper import ShardMapper, morton_order
from repro.dg.mesh import HexMesh
from repro.dg.timestepping import LSRK45
from repro.obs import get_logger
from repro.pim.chip import PimChip
from repro.pim.executor import ChipExecutor, TimingReport
from repro.pim.isa import barrier
from repro.pim.params import ChipConfig

__all__ = [
    "InterChipLink",
    "Sharding",
    "Shard",
    "ShardedResult",
    "ShardedExecutor",
    "partition_mesh",
    "shards_needed",
]

log = get_logger("pim.multichip")


@dataclass(frozen=True)
class InterChipLink:
    """One directed chip-to-chip link (SerDes-style point-to-point).

    Defaults model a conservative off-package interconnect: ~250 ns
    end-to-end latency, 32 GB/s per direction, ~60 pJ/byte — an order of
    magnitude slower and costlier than the on-chip H-tree, which is what
    makes overlapping the exchange worth engineering for.
    """

    latency_s: float = 250e-9
    bandwidth_bps: float = 32e9
    energy_j_per_byte: float = 60e-12

    def transfer_time_s(self, n_bytes: int) -> float:
        return self.latency_s + n_bytes / self.bandwidth_bps

    def transfer_energy_j(self, n_bytes: int) -> float:
        return n_bytes * self.energy_j_per_byte


@dataclass(frozen=True)
class Sharding:
    """A face-adjacency-aware partition of the mesh across N chips.

    ``exchanges`` maps each directed shard pair ``(src, dst)`` to the
    element ids ``dst`` needs from ``src`` — ``dst``'s halo restricted to
    ``src``'s owned set.  The PL005 audit checks these sets cover every
    cross-shard face exactly once.
    """

    n_shards: int
    owned: Tuple[np.ndarray, ...]
    halo: Tuple[np.ndarray, ...]
    #: element id -> owning shard.
    owner: np.ndarray
    exchanges: Dict[Tuple[int, int], np.ndarray]


def partition_mesh(mesh: HexMesh, n_shards: int) -> Sharding:
    """Cut the mesh into ``n_shards`` contiguous Morton chunks + halos."""
    parts = mesh.partition_elements(n_shards, order=morton_order(mesh.m))
    owner = np.empty(mesh.n_elements, dtype=np.int64)
    for s, p in enumerate(parts):
        owner[p] = s
    halos: List[np.ndarray] = []
    exchanges: Dict[Tuple[int, int], np.ndarray] = {}
    for s, p in enumerate(parts):
        h = mesh.halo_of(p)
        halos.append(h)
        for src in np.unique(owner[h]):
            exchanges[(int(src), s)] = h[owner[h] == src]
    return Sharding(
        n_shards=n_shards,
        owned=tuple(parts),
        halo=tuple(halos),
        owner=owner,
        exchanges=exchanges,
    )


def shards_needed(mesh: HexMesh, chip: ChipConfig,
                  blocks_per_element: int = 1,
                  max_shards: int = 4096) -> Optional[int]:
    """Smallest power-of-two shard count whose shards all fit ``chip``.

    Pure partition arithmetic (owned + halo block groups vs chip blocks),
    no mappers or chips constructed — usable at r=6 scale (262k elements)
    where a single-chip :class:`~repro.core.mapper.ElementMapper` raises.
    Returns ``None`` when even ``max_shards`` shards do not fit.
    """
    g = int(blocks_per_element)
    n = 1
    while n <= max_shards:
        if n >= mesh.n_elements:
            return None
        sharding = partition_mesh(mesh, n)
        worst = max(
            (len(o) + len(h)) * g
            for o, h in zip(sharding.owned, sharding.halo)
        )
        if worst <= chip.n_blocks:
            return n
        n *= 2
    return None


def single_chip_batched_makespan(
    mesh: HexMesh,
    chip_config: ChipConfig,
    kernel_factory: Callable[[Any], Any],
    blocks_per_element: int = 1,
    dt: float = 1e-4,
    n_steps: int = 1,
) -> Tuple[float, int]:
    """Modeled makespan of the single-chip Fig. 7 batching baseline.

    When the mesh overflows the chip, the single-chip path runs Morton
    batches sequentially; the makespan is the sum of per-batch step
    makespans.  Conservative in the baseline's favor: DRAM batch-swap
    staging is excluded, and cross-batch flux faces are skipped rather
    than priced (the kernel emitters skip off-mapper neighbors), so the
    sharded speedup measured against this is an underestimate.
    Returns ``(makespan_s, n_batches)``.
    """
    from repro.core.mapper import ElementMapper

    g = int(blocks_per_element)
    per_batch = chip_config.n_blocks // g
    if per_batch < 1:
        raise ValueError(
            f"chip {chip_config.name} cannot hold even one element group "
            f"(g={g} > {chip_config.n_blocks} blocks)")
    order = morton_order(mesh.m)
    n_batches = -(-mesh.n_elements // per_batch)
    total = 0.0
    for chunk in np.array_split(order, n_batches):
        mapper = ElementMapper(mesh.m, chip_config, g, elements=chunk)
        kern = kernel_factory(mapper)
        ex = ChipExecutor(PimChip(chip_config))
        plan = ex.lower(kern.time_step(dt))
        for _ in range(n_steps):
            ex.run(plan, functional=False)
        total += ex.now()
    return total, n_batches


@dataclass
class Shard:
    """One simulated chip of the sharded run."""

    shard_id: int
    mapper: ShardMapper
    chip: PimChip
    executor: ChipExecutor
    kernels: Any
    #: lowered per-phase plans, reused across stages and steps.
    vol_plan: Any = None
    flux_plan: Any = None
    int_plans: Tuple[Any, ...] = ()


@dataclass
class ShardedResult:
    """Outcome of :meth:`ShardedExecutor.run_steps`."""

    report: TimingReport
    #: modeled wall time of the whole sharded run (max over shard clocks;
    #: every scheduled exchange is consumed, so arrivals are covered).
    makespan_s: float
    shard_makespans: List[float]
    n_exchanges: int
    exchange_bytes: int
    #: total link busy time across all directed links.
    exchange_busy_s: float
    #: link busy time overlapped with destination-shard compute, measured
    #: from HardwareCounters intervals (None without counters).
    exchange_overlap_s: Optional[float]
    overlap_fraction: Optional[float]
    #: time shards spent stalled waiting on halo arrivals (the pipeline's
    #: exposed, non-overlapped exchange cost).
    halo_wait_s: float
    #: per-exchange schedule: (src, dst, start_s, end_s, n_bytes).
    link_events: List[Tuple[int, int, float, float, int]]


class ShardedExecutor:
    """Replays one shard-plan set per chip, pipelining the halo exchange.

    ``kernel_factory(mapper)`` builds the kernel generator for one shard
    (any of the OneBlock kernel families); ``jobs`` > 1 replays the
    shards of each phase on a thread pool — safe because each shard owns
    its chip/executor, and deterministic because link scheduling happens
    on the main thread between phases in sorted ``(src, dst)`` order.

    With ``n_shards == 1`` the phase loop degenerates to the exact
    single-chip substream sequence of ``time_step`` (no halo, no links),
    so results are bit-identical to plain plan replay — the anchor the
    N-shard digest sweep is chained to.
    """

    def __init__(
        self,
        mesh: HexMesh,
        chip_config: ChipConfig,
        kernel_factory: Callable[[ShardMapper], Any],
        n_shards: int = 1,
        blocks_per_element: int = 1,
        link: Optional[InterChipLink] = None,
        counters: bool = False,
        jobs: Optional[int] = None,
        sharding: Optional[Sharding] = None,
        verify_halo: bool = True,
    ) -> None:
        self.mesh = mesh
        self.config = chip_config
        self.link = link if link is not None else InterChipLink()
        self.jobs = jobs
        self.g = int(blocks_per_element)
        self.sharding = (sharding if sharding is not None
                         else partition_mesh(mesh, n_shards))
        if verify_halo:
            # lazy import keeps the analysis -> pim edge acyclic (RL003).
            from repro.analysis.halo import audit_sharding

            errors = [f for f in audit_sharding(mesh, self.sharding)
                      if f.is_error]
            if errors:
                raise ValueError(
                    "halo coverage audit failed (PL005): "
                    + "; ".join(f.format() for f in errors[:3]))
        self.shards: List[Shard] = []
        for s in range(self.sharding.n_shards):
            mapper = ShardMapper(
                mesh.m, chip_config, self.g,
                owned=self.sharding.owned[s],
                halo=self.sharding.halo[s],
                shard_id=s,
            )
            chip = PimChip(chip_config)
            self.shards.append(Shard(
                shard_id=s,
                mapper=mapper,
                chip=chip,
                executor=ChipExecutor(chip, counters=counters),
                kernels=kernel_factory(mapper),
            ))
        #: directed (src, dst) -> time the link frees up.
        self._link_free: Dict[Tuple[int, int], float] = defaultdict(float)
        self._lowered_dt: Optional[float] = None
        k0 = self.shards[0].kernels
        #: exchanged payload per ghost element: its full state block rows.
        self.halo_bytes_per_element = (
            int(k0.n_vars) * int(k0.element.n_nodes) * 4)

    # ------------------------------------------------------------------ #

    @property
    def n_shards(self) -> int:
        return self.sharding.n_shards

    def _each(self, fn: Callable[[int], Any]) -> List[Any]:
        """Run ``fn(shard_index)`` for every shard, threaded when asked."""
        idx = range(self.n_shards)
        if self.jobs and self.jobs > 1 and self.n_shards > 1:
            with ThreadPoolExecutor(max_workers=self.jobs) as pool:
                return list(pool.map(fn, idx))
        return [fn(s) for s in idx]

    def setup(self, state: np.ndarray) -> None:
        """Run every shard's setup + state load (owned *and* halo blocks)."""
        def one(s: int) -> None:
            sh = self.shards[s]
            sh.executor.run(
                sh.kernels.setup() + sh.kernels.load_state(state),
                functional=True,
            )
        self._each(one)

    def lower_step(self, dt: float) -> None:
        """Lower each shard's per-phase plans once (reused every stage)."""
        def one(s: int) -> None:
            sh = self.shards[s]
            kern, ex = sh.kernels, sh.executor
            owned = sh.mapper.owned
            sh.vol_plan = ex.lower(kern.volume(elements=owned) + [barrier()])
            sh.flux_plan = ex.lower(kern.flux(elements=owned) + [barrier()])
            sh.int_plans = tuple(
                ex.lower(kern.integration(stage, dt, elements=owned)
                         + [barrier()])
                for stage in range(LSRK45.n_stages)
            )
        self._each(one)
        self._lowered_dt = dt
        log.debug("lowered %d shard plan sets (dt=%g)", self.n_shards, dt)

    # ------------------------------------------------------------------ #

    def _exchange(self, functional: bool,
                  events: List[Tuple[int, int, float, float, int]]) -> List[float]:
        """Schedule one round of halo exchange; returns per-shard arrivals.

        Deterministic: directed pairs go in sorted order, each link keeps
        its own occupancy, and an exchange departs no earlier than the
        source shard's post-integration clock.  The functional copy moves
        the ghost elements' full block state (kernel-agnostic and
        bitwise exact).
        """
        arrivals = [0.0] * self.n_shards
        for (src, dst) in sorted(self.sharding.exchanges):
            elems = self.sharding.exchanges[(src, dst)]
            n_bytes = len(elems) * self.halo_bytes_per_element
            ready = self.shards[src].executor.now()
            t0 = max(ready, self._link_free[(src, dst)])
            t1 = t0 + self.link.transfer_time_s(n_bytes)
            self._link_free[(src, dst)] = t1
            events.append((src, dst, t0, t1, n_bytes))
            arrivals[dst] = max(arrivals[dst], t1)
            if functional:
                src_sh, dst_sh = self.shards[src], self.shards[dst]
                for e in elems:
                    for part in range(self.g):
                        sb = src_sh.chip.block(src_sh.mapper.block_of(e, part))
                        db = dst_sh.chip.block(dst_sh.mapper.block_of(e, part))
                        db.data[:, :] = sb.data
        return arrivals

    def run_steps(self, dt: float, n_steps: int = 1,
                  functional: bool = True) -> ShardedResult:
        """Advance ``n_steps`` RK steps across all shards.

        Per stage: parallel volume replay (overlaps the previous stage's
        in-flight exchange), halo-arrival sync, parallel flux +
        integration replay, then the next exchange round — skipped after
        the very last stage, when no one consumes it.
        """
        if self._lowered_dt != dt:
            self.lower_step(dt)
        shards = self.shards
        n_stages = LSRK45.n_stages
        reports: List[List[TimingReport]] = [[] for _ in shards]
        link_events: List[Tuple[int, int, float, float, int]] = []
        halo_wait = 0.0
        arrivals = [0.0] * self.n_shards

        def replay(plan_of: Callable[[Shard], Any]) -> None:
            def one(s: int) -> None:
                reports[s].append(shards[s].executor.run(
                    plan_of(shards[s]), functional=functional))
            self._each(one)

        for step in range(n_steps):
            for stage in range(n_stages):
                replay(lambda sh: sh.vol_plan)
                for s, sh in enumerate(shards):
                    # halo from the previous round must have landed before
                    # this shard's flux fetches ghost columns; volume above
                    # already ran under the in-flight exchange.
                    halo_wait += max(0.0, arrivals[s] - sh.executor.now())
                    sh.executor.sync_at(arrivals[s])
                replay(lambda sh: sh.flux_plan)
                replay(lambda sh, _stage=stage: sh.int_plans[_stage])
                last = step == n_steps - 1 and stage == n_stages - 1
                if not last and self.sharding.exchanges:
                    arrivals = self._exchange(functional, link_events)
        return self._finish(reports, link_events, halo_wait)

    # ------------------------------------------------------------------ #

    def _finish(self, reports: List[List[TimingReport]],
                link_events: List[Tuple[int, int, float, float, int]],
                halo_wait: float) -> ShardedResult:
        """Merge per-shard accounting + link occupancy into one report."""
        shard_makespans = [sh.executor.now() for sh in self.shards]
        makespan = max(shard_makespans) if shard_makespans else 0.0

        merged = TimingReport()
        for s, runs in enumerate(reports):
            for r in runs:
                for k, v in r.time_by_tag.items():
                    merged.time_by_tag[k] += v
                for k, v in r.energy_by_tag.items():
                    merged.energy_by_tag[k] += v
                merged.op_counts.update(r.op_counts)
                merged.dynamic_energy_j += r.dynamic_energy_j
                merged.n_instructions += r.n_instructions
                merged.transfers += r.transfers
                merged.hops += r.hops
                merged.flits += r.flits
                merged.bytes_moved += r.bytes_moved
                merged.retries += r.retries
            ex = self.shards[s].executor
            # busy clocks are absolute (persistent per-chip clocks), so the
            # per-shard snapshot overwrites — summing run reports would
            # double count; keys are namespaced by shard.
            for b, t in ex._block_clock.items():
                merged.block_busy_s[(s, int(b))] = t
            merged.host_busy_s += ex._host_clock
            merged.dram_busy_s += ex._dram_clock

        exchange_busy = sum(t1 - t0 for (_, _, t0, t1, _) in link_events)
        exchange_bytes = sum(nb for (*_, nb) in link_events)
        link_energy = self.link.transfer_energy_j(exchange_bytes)
        merged.time_by_tag["halo:exchange"] += exchange_busy
        merged.energy_by_tag["halo:exchange"] += link_energy
        merged.dynamic_energy_j += link_energy
        merged.bytes_moved += exchange_bytes
        merged.transfers += len(link_events)
        merged.total_time_s = makespan
        merged.makespan_cycles = makespan * self.config.clock_hz

        overlap = self._measured_overlap(link_events)
        return ShardedResult(
            report=merged,
            makespan_s=makespan,
            shard_makespans=shard_makespans,
            n_exchanges=len(link_events),
            exchange_bytes=exchange_bytes,
            exchange_busy_s=exchange_busy,
            exchange_overlap_s=overlap,
            overlap_fraction=(overlap / exchange_busy
                              if overlap is not None and exchange_busy > 0.0
                              else None),
            halo_wait_s=halo_wait,
            link_events=link_events,
        )

    def _measured_overlap(
        self, link_events: List[Tuple[int, int, float, float, int]]
    ) -> Optional[float]:
        """Link busy time overlapped with destination-shard compute.

        Intersects every exchange's ``[t0, t1)`` window with the union of
        the destination chip's recorded block-busy intervals — counters
        data, so the pipelining claim is measured from the same evidence
        the Gantt trace renders.  ``None`` when counters are off.
        """
        if not link_events:
            return 0.0
        busy: List[Optional[List[Tuple[float, float]]]] = []
        for sh in self.shards:
            cnt = sh.executor.counters
            if cnt is None:
                return None
            ivs = sorted(
                (start, end) for kind, _key, start, end in cnt.events
                if kind == "block" and end > start
            )
            union: List[Tuple[float, float]] = []
            for start, end in ivs:
                if union and start <= union[-1][1]:
                    union[-1] = (union[-1][0], max(union[-1][1], end))
                else:
                    union.append((start, end))
            busy.append(union)
        total = 0.0
        for (_src, dst, t0, t1, _nb) in link_events:
            for (b0, b1) in busy[dst]:
                lo, hi = max(t0, b0), min(t1, b1)
                if lo < hi:
                    total += hi - lo
                if b0 >= t1:
                    break
        return total

    # ------------------------------------------------------------------ #

    def read_state(self) -> np.ndarray:
        """Assemble the global state from every shard's *owned* elements."""
        k0 = self.shards[0].kernels
        out = np.zeros(
            (int(k0.n_vars), self.mesh.n_elements, int(k0.element.n_nodes)),
            dtype=np.float32,
        )
        for sh in self.shards:
            part = sh.kernels.read_state(sh.chip, elements=sh.mapper.owned)
            out[:, sh.mapper.owned, :] = part[:, sh.mapper.owned, :]
        return out

    def state_digests(self) -> Dict[int, str]:
        """SHA-256 of each element's full block state, from its owner shard.

        Every element is owned by exactly one shard, so this covers the
        whole mesh; comparing against a single-chip run's digests is the
        bit-identity check (scratch columns included — the sharded replay
        must reproduce the entire block image, not just the variables).
        """
        out: Dict[int, str] = {}
        for sh in self.shards:
            for e in sh.mapper.owned:
                h = hashlib.sha256()
                for part in range(self.g):
                    block = sh.chip.block(sh.mapper.block_of(e, part))
                    h.update(block.data.tobytes())
                out[int(e)] = h.hexdigest()
        return out
