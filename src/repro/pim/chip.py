"""The Wave-PIM chip: tiles + central controller + off-chip HBM path.

Global block id ``g`` lives in tile ``g // blocks_per_tile`` with local id
``g % blocks_per_tile``.  Transfers between blocks of different tiles hop
through the central controller; the model charges them the source-tile
path, the destination-tile path, and a fixed inter-tile hop (documented
assumption — the paper only details the intra-tile network).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.pim.block import MemoryBlock
from repro.pim.hbm import HbmModel
from repro.pim.params import ChipConfig
from repro.pim.tile import Tile

if TYPE_CHECKING:
    from repro.interconnect.topology import Interconnect

    #: (switch keys, wire hops, extra latency, source-tile interconnect).
    TransferPath = tuple[list[tuple[int, int]], int, float, Interconnect]

__all__ = ["PimChip", "INTER_TILE_HOP_S"]

#: Extra latency for crossing the central controller between tiles (s).
INTER_TILE_HOP_S = 10e-9


class PimChip:
    """A full Wave-PIM chip (lazy tiles, shared config)."""

    #: process-wide path tables keyed by topology: chips with the same
    #: geometry share one memo, so a fresh ``PimChip`` (the compiler builds
    #: one per costing pass) starts with every previously walked route
    #: already resolved.  Sound because :meth:`transfer_path` is a pure
    #: function of the config's geometry.
    _shared_paths: dict[tuple, dict] = {}

    def __init__(self, config: ChipConfig):
        self.config = config
        self.hbm = HbmModel()
        self._tiles: dict[int, Tile] = {}
        #: (src, dst) -> (switch keys, hops, extra latency, source-tile
        #: interconnect).  The topology never changes, so every executor on
        #: this chip shares one memoized path table instead of re-walking
        #: the H-tree/Bus per TRANSFER/LUT instruction — and chips of the
        #: same topology share the table process-wide.
        topo = (config.name, config.interconnect, config.n_tiles,
                config.blocks_per_tile)
        self._path_cache: dict[tuple[int, int], "TransferPath"] = (
            PimChip._shared_paths.setdefault(topo, {})
        )
        #: bumped by :meth:`invalidate_routes` whenever cached paths may be
        #: stale (spare-block remapping moved a block).  Execution plans
        #: record the epoch they were lowered under; a mismatch forces a
        #: re-lower instead of replaying stale routes.
        self.routing_epoch: int = 0

    def invalidate_routes(self) -> None:
        """Drop all memoized transfer paths and bump ``routing_epoch``.

        Called when the block id -> physical location association changes
        (e.g. :class:`~repro.core.mapper.ElementMapper` remapping around
        faulty blocks), so no executor or plan replays a stale route.
        This chip detaches from the process-wide shared table (other chips
        of the same topology keep their — still valid — geometry memo).
        """
        self._path_cache = {}
        self.routing_epoch += 1

    # -- geometry --------------------------------------------------------- #

    @property
    def n_tiles(self) -> int:
        return self.config.n_tiles

    @property
    def n_blocks(self) -> int:
        return self.config.n_blocks

    def locate(self, global_block: int) -> tuple[int, int]:
        """``global id -> (tile id, local id)``."""
        if not 0 <= global_block < self.n_blocks:
            raise IndexError(
                f"block {global_block} outside chip of {self.n_blocks} blocks"
            )
        return divmod(global_block, self.config.blocks_per_tile)

    def tile(self, tile_id: int) -> Tile:
        if not 0 <= tile_id < self.n_tiles:
            raise IndexError(f"tile {tile_id} outside chip of {self.n_tiles}")
        t = self._tiles.get(tile_id)
        if t is None:
            t = Tile(self.config, tile_id)
            self._tiles[tile_id] = t
        return t

    def block(self, global_block: int) -> MemoryBlock:
        tid, lid = self.locate(global_block)
        return self.tile(tid).block(lid)

    def transfer_path(self, src: int, dst: int) -> "TransferPath":
        """Memoized ``(switch keys, hops, extra latency, interconnect)`` of
        an inter-block transfer (the interconnect is the source tile's —
        the one whose flit geometry prices the wire phase)."""
        cached = self._path_cache.get((src, dst))
        if cached is not None:
            return cached
        s_tile, s_loc = self.locate(src)
        d_tile, d_loc = self.locate(dst)
        ic = self.tile(s_tile).interconnect
        result: "TransferPath"
        if s_tile == d_tile:
            path = ic.path(s_loc, d_loc)
            result = ([(s_tile, sw) for sw in path], len(path), 0.0, ic)
        else:
            # cross-tile: climb the source tile, hop the controller, descend.
            up = ic.path_to_root(s_loc)
            down = self.tile(d_tile).interconnect.path_to_root(d_loc)
            keys = [(s_tile, sw) for sw in up] + [(d_tile, sw) for sw in down]
            result = (keys, len(up) + len(down), INTER_TILE_HOP_S, ic)
        self._path_cache[(src, dst)] = result
        return result

    def link_label(self, key: tuple[int, int]) -> str:
        """Human name of a switch-occupancy key ``(tile, switch)``.

        The hardware counters record link occupancy under these keys; this
        labels them ``link:t<tile>.<switch>`` (H-tree: ``link:t0.S1.3``,
        Bus: ``link:t0.bus``) for timelines and attribution reports.
        """
        tile_id, switch_id = key
        return f"link:t{tile_id}.{self.tile(tile_id).interconnect.switch_label(switch_id)}"

    # -- power ------------------------------------------------------------- #

    def static_power_w(self, include_host: bool = True, include_hbm: bool = False) -> float:
        """Chip static power re-derived from Table 3 components."""
        p = self.config.power
        total = self.n_tiles * p.tile_w(self.config.interconnect, self.config.blocks_per_tile)
        total += p.central_controller_w
        if include_host:
            total += p.cpu_host_w
        if include_hbm:
            total += p.hbm_w
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PimChip({self.config.name}, tiles={self.n_tiles}, {self.config.interconnect})"
