"""The Wave-PIM chip: tiles + central controller + off-chip HBM path.

Global block id ``g`` lives in tile ``g // blocks_per_tile`` with local id
``g % blocks_per_tile``.  Transfers between blocks of different tiles hop
through the central controller; the model charges them the source-tile
path, the destination-tile path, and a fixed inter-tile hop (documented
assumption — the paper only details the intra-tile network).
"""

from __future__ import annotations

from repro.pim.block import MemoryBlock
from repro.pim.hbm import HbmModel
from repro.pim.params import ChipConfig
from repro.pim.tile import Tile

__all__ = ["PimChip"]

#: Extra latency for crossing the central controller between tiles (s).
INTER_TILE_HOP_S = 10e-9


class PimChip:
    """A full Wave-PIM chip (lazy tiles, shared config)."""

    def __init__(self, config: ChipConfig):
        self.config = config
        self.hbm = HbmModel()
        self._tiles: dict = {}

    # -- geometry --------------------------------------------------------- #

    @property
    def n_tiles(self) -> int:
        return self.config.n_tiles

    @property
    def n_blocks(self) -> int:
        return self.config.n_blocks

    def locate(self, global_block: int) -> tuple[int, int]:
        """``global id -> (tile id, local id)``."""
        if not 0 <= global_block < self.n_blocks:
            raise IndexError(
                f"block {global_block} outside chip of {self.n_blocks} blocks"
            )
        return divmod(global_block, self.config.blocks_per_tile)

    def tile(self, tile_id: int) -> Tile:
        if not 0 <= tile_id < self.n_tiles:
            raise IndexError(f"tile {tile_id} outside chip of {self.n_tiles}")
        t = self._tiles.get(tile_id)
        if t is None:
            t = Tile(self.config, tile_id)
            self._tiles[tile_id] = t
        return t

    def block(self, global_block: int) -> MemoryBlock:
        tid, lid = self.locate(global_block)
        return self.tile(tid).block(lid)

    # -- power ------------------------------------------------------------- #

    def static_power_w(self, include_host: bool = True, include_hbm: bool = False) -> float:
        """Chip static power re-derived from Table 3 components."""
        p = self.config.power
        total = self.n_tiles * p.tile_w(self.config.interconnect, self.config.blocks_per_tile)
        total += p.central_controller_w
        if include_host:
            total += p.cpu_host_w
        if include_hbm:
            total += p.hbm_w
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PimChip({self.config.name}, tiles={self.n_tiles}, {self.config.interconnect})"
