"""Instruction-stream execution: functional semantics + timing + energy.

The executor consumes a flat list of :class:`~repro.pim.isa.Instruction`
in program order and maintains:

* per-block clocks (a block executes its own instructions serially — there
  is one set of drivers per crossbar);
* per-switch availability inside each tile (the H-tree/Bus contention
  model of §4.2: disjoint H-tree paths overlap, the bus serializes);
* a host-CPU clock (sqrt/inverse pre-processing, §4.3) and a DRAM channel
  clock (batching traffic, §6.1);
* dynamic-energy and busy-time accounting per attribution tag — the raw
  data behind the Fig. 13 pipeline breakdown and the Fig. 14 intra/inter
  split.

With ``functional=True`` instructions also update the blocks' word
contents, which is how the tests prove the PIM-mapped wave kernels compute
the same numbers as the numpy dG reference.

Every run executes through an :class:`~repro.pim.plan.ExecutionPlan` —
raw streams are lowered on entry, and functional and fault-injecting runs
replay the plan bit-identically to per-instruction dispatch (DESIGN.md
§13).  ``serial=True`` keeps the original per-instruction dispatcher as
the audit reference the plan path is verified against.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.obs import (
    HardwareCounters,
    attribute_makespan,
    counter_track_events,
    counters_enabled,
    get_metrics,
    get_tracer,
)
from repro.pim.arithmetic import HostOpModel, OpCosts, default_op_costs
from repro.pim.chip import PimChip
from repro.pim.isa import ARITHMETIC_OPS, Instruction, Opcode
from repro.pim.plan import (
    APPLY_ARITH,
    APPLY_ARITH_BATCH,
    APPLY_BROADCAST,
    APPLY_COPY,
    APPLY_COPY_BATCH,
    APPLY_GATHER,
    COPY_NORS,
    OP_IDS,
    STEP_SEGMENT,
    STEP_TRANSFER,
    ExecutionPlan,
    fold_array,
    lower_program,
)

__all__ = [
    "TimingReport", "BlockExecutor", "ChipExecutor", "ExecutionPlan",
    "tag_phase", "PHASES",
]

#: NOR cycles of a row-parallel column-to-column copy (two cascaded NOTs).
#: Canonical value lives in :mod:`repro.pim.plan`; re-exported here because
#: the runtime estimator and the fault hooks import it from this module.
_COPY_NORS = COPY_NORS

#: plan-array opcode ids of the flip-eligible (NOR-based) compute ops.
_FLIP_OP_IDS = np.array(
    sorted(OP_IDS[op] for op in (*ARITHMETIC_OPS, Opcode.COPY)), dtype=np.uint8
)


def _float_dict() -> defaultdict:
    """Picklable ``defaultdict(float)`` factory for report accumulators."""
    return defaultdict(float)


#: the Fig. 13-style phases a tag attributes time to (DESIGN.md
#: "Observability": ``executor.cycles.<phase>``).
PHASES = ("volume", "flux", "integration", "lut", "transfer", "dram", "host", "sync", "other")

_PHASE_CACHE: dict = {}


def tag_phase(tag: str) -> str:
    """Map an instruction tag onto its pipeline phase.

    The kernel generators use a small tag vocabulary (``volume``,
    ``flux:compute``, ``flux:fetch``, ``integration``, ``setup``/``load``,
    ``sync``, ``host``, ``dram``); fetches are interconnect time, so they
    land in ``transfer``, and DRAM staging in ``dram``.
    """
    phase = _PHASE_CACHE.get(tag)
    if phase is None:
        if not tag:
            phase = "other"
        elif tag.startswith("volume"):
            phase = "volume"
        elif tag.startswith("flux:fetch"):
            phase = "transfer"
        elif tag.startswith("flux"):
            phase = "flux"
        elif tag.startswith("integration"):
            phase = "integration"
        elif "lut" in tag:
            phase = "lut"
        elif tag in ("setup", "load") or tag.startswith("dram"):
            phase = "dram"
        elif tag.startswith("host"):
            phase = "host"
        elif tag.startswith("halo"):
            # inter-chip halo exchange (repro.pim.multichip): wire time on
            # the chip-to-chip links, accounted alongside on-chip routing.
            phase = "transfer"
        elif tag == "sync":
            phase = "sync"
        else:
            phase = "other"
        _PHASE_CACHE[tag] = phase
    return phase


def _fold_add(base: float, value: float, count: int) -> float:
    """Left-fold ``count`` additions of ``value`` onto ``base``.

    Bit-identical to ``for _ in range(count): base += value`` — IEEE float
    addition is deterministic and ``np.add.accumulate`` is a strict
    sequential fold (no pairwise re-association), so grouped accounting
    can price a whole run of identical instructions in one shot and still
    match the serial path float-for-float.
    """
    if count <= 64:
        for _ in range(count):
            base += value
        return base
    arr = np.empty(count + 1)
    arr[0] = base
    arr[1:] = value
    return float(np.add.accumulate(arr)[-1])


@dataclass
class TimingReport:
    """Aggregated outcome of one executed instruction stream."""

    total_time_s: float = 0.0
    dynamic_energy_j: float = 0.0
    time_by_tag: dict = field(default_factory=_float_dict)
    energy_by_tag: dict = field(default_factory=_float_dict)
    op_counts: Counter = field(default_factory=Counter)
    block_busy_s: dict = field(default_factory=_float_dict)
    host_busy_s: float = 0.0
    dram_busy_s: float = 0.0
    n_instructions: int = 0
    #: interconnect accounting (TRANSFER + LUT): transfer count, switch
    #: hops traversed, flits moved, payload bytes — the raw numbers behind
    #: the ``interconnect.<kind>.*`` metrics and the Fig. 14 H-tree/Bus gap.
    transfers: int = 0
    hops: int = 0
    flits: int = 0
    bytes_moved: int = 0
    #: fault-tolerance accounting (all zero unless a
    #: :class:`~repro.faults.model.FaultModel` was attached): injected /
    #: detected / corrected fault occurrences, unrecovered outcomes, and
    #: TRANSFER retransmissions priced into the tag times above.
    retries: int = 0
    faults_injected: int = 0
    faults_detected: int = 0
    faults_corrected: int = 0
    faults_uncorrected: int = 0
    #: modeled makespan in chip clock cycles (``total_time_s`` scaled by
    #: the chip clock); for scheduler-reordered plans
    #: ``emission_makespan_cycles`` additionally records the modeled
    #: emission-order baseline the scheduler improved on (0.0 otherwise).
    makespan_cycles: float = 0.0
    emission_makespan_cycles: float = 0.0

    def __post_init__(self) -> None:
        # accept plain dicts from callers; the accumulators below rely on
        # defaultdict/Counter semantics.
        if not isinstance(self.time_by_tag, defaultdict):
            self.time_by_tag = defaultdict(float, self.time_by_tag)
        if not isinstance(self.energy_by_tag, defaultdict):
            self.energy_by_tag = defaultdict(float, self.energy_by_tag)
        if not isinstance(self.op_counts, Counter):
            self.op_counts = Counter(self.op_counts)
        if not isinstance(self.block_busy_s, defaultdict):
            self.block_busy_s = defaultdict(float, self.block_busy_s)

    def add(self, tag: str, op: Opcode, duration: float, energy: float) -> None:
        self.time_by_tag[tag] += duration
        self.energy_by_tag[tag] += energy
        self.op_counts[op.value] += 1
        self.dynamic_energy_j += energy
        self.n_instructions += 1

    def add_batch(self, tag: str, op: Opcode, duration: float, energy: float,
                  count: int) -> None:
        """Account ``count`` identical instructions in one call.

        Float-identical to ``count`` serial :meth:`add` calls (left-fold
        accumulation, see :func:`_fold_add`).
        """
        self.time_by_tag[tag] = _fold_add(self.time_by_tag[tag], duration, count)
        self.energy_by_tag[tag] = _fold_add(self.energy_by_tag[tag], energy, count)
        self.op_counts[op.value] += count
        self.dynamic_energy_j = _fold_add(self.dynamic_energy_j, energy, count)
        self.n_instructions += count

    def add_overhead(self, tag: str, duration: float, energy: float) -> None:
        """Account recovery work (recomputes, retransmissions, parity upkeep)
        under ``tag`` without counting an extra instruction."""
        self.time_by_tag[tag] += duration
        self.energy_by_tag[tag] += energy
        self.dynamic_energy_j += energy

    def phase_times(self) -> dict:
        """Busy seconds per pipeline phase (see :func:`tag_phase`).

        Partitions ``time_by_tag`` completely: the values sum to
        ``sum(self.time_by_tag.values())`` exactly (each tag lands in one
        phase, plain left-to-right addition per phase).
        """
        out: dict = {}
        for tag, t in self.time_by_tag.items():
            phase = tag_phase(tag)
            out[phase] = out.get(phase, 0.0) + t
        return out

    def phase_cycles(self, clock_hz: float) -> dict:
        """Per-phase busy time expressed in chip clock cycles."""
        return {phase: t * clock_hz for phase, t in self.phase_times().items()}

    def merge(self, other: "TimingReport") -> None:
        """Fold another report's accounting into this one (sequential join)."""
        self.total_time_s += other.total_time_s
        self.dynamic_energy_j += other.dynamic_energy_j
        self.host_busy_s += other.host_busy_s
        self.dram_busy_s += other.dram_busy_s
        self.n_instructions += other.n_instructions
        self.transfers += other.transfers
        self.hops += other.hops
        self.flits += other.flits
        self.bytes_moved += other.bytes_moved
        self.retries += other.retries
        self.faults_injected += other.faults_injected
        self.faults_detected += other.faults_detected
        self.faults_corrected += other.faults_corrected
        self.faults_uncorrected += other.faults_uncorrected
        self.makespan_cycles += other.makespan_cycles
        self.emission_makespan_cycles += other.emission_makespan_cycles
        for k, v in other.time_by_tag.items():
            self.time_by_tag[k] += v
        for k, v in other.energy_by_tag.items():
            self.energy_by_tag[k] += v
        self.op_counts.update(other.op_counts)
        for k, v in other.block_busy_s.items():
            self.block_busy_s[k] += v


class ChipExecutor:
    """Executes instruction streams on a :class:`PimChip`."""

    def __init__(
        self,
        chip: PimChip,
        op_costs: OpCosts | None = None,
        host: HostOpModel | None = None,
        verify: bool = False,
        faults=None,
        counters: "HardwareCounters | bool | None" = None,
    ):
        self.chip = chip
        #: optional :class:`~repro.obs.counters.HardwareCounters` recorder.
        #: ``None`` defers to the ``REPRO_COUNTERS`` knob (default off),
        #: ``True`` attaches a fresh recorder, ``False`` forces off.  The
        #: recorder is a pure observer of values the replay already
        #: computes: reports and block state are bit-identical either way.
        if counters is None:
            counters = counters_enabled()
        if counters is True:
            counters = HardwareCounters()
        self.counters: HardwareCounters | None = counters or None
        #: opt-in static checking: every :meth:`run` audits the stream with
        #: the :mod:`repro.analysis` passes before executing it (and raises
        #: :class:`~repro.analysis.checker.ProgramCheckError` on errors).
        self.verify = verify
        #: optional :class:`~repro.faults.model.FaultModel`.  With no model
        #: (or a model whose rates are all zero) every fault hook
        #: short-circuits before touching a float, so the default
        #: accounting stays bit-identical to the fault-free executor.
        self.faults = faults
        self.costs = op_costs or default_op_costs(chip.config.device)
        self.host = host or HostOpModel(power_w=chip.config.power.cpu_host_w)
        self._block_clock: dict = defaultdict(float)
        self._switch_free: dict = defaultdict(float)  # (tile, switch) -> time
        #: separate transfer ports: blocks have row *and* column buffers
        #: (§4.1), so an outbound read and an inbound write can overlap.
        self._port_free: dict = defaultdict(float)  # ("r"/"w", block) -> time
        self._host_clock = 0.0
        self._dram_clock = 0.0
        #: floor applied to every lane after a BARRIER (covers blocks that
        #: have not executed anything yet).
        self._barrier_time = 0.0

    # ------------------------------------------------------------------ #

    def reset_clocks(self) -> None:
        self._block_clock.clear()
        self._switch_free.clear()
        self._port_free.clear()
        self._host_clock = 0.0
        self._dram_clock = 0.0
        self._barrier_time = 0.0
        if self.counters is not None:
            # counter intervals live on the executor's modeled clock; a
            # clock reset would fold new intervals onto old ones, so the
            # recorder restarts with the clocks.
            self.counters = HardwareCounters(timeline=self.counters.timeline)

    def _now(self) -> float:
        clocks = (
            list(self._block_clock.values())
            + list(self._port_free.values())
            + [self._host_clock, self._dram_clock]
        )
        return max(clocks) if clocks else 0.0

    def now(self) -> float:
        """Current modeled time: the max over every clock this chip owns.

        Clocks persist across :meth:`run` calls (until
        :meth:`reset_clocks`), so replaying a step's substreams one at a
        time lands on the same final clock as replaying the whole step —
        the property the multi-chip layer's per-phase loop relies on.
        """
        return self._now()

    def sync_at(self, t: float) -> None:
        """Gate future work on an external event at modeled time ``t``.

        Raises the barrier floor so every lane (blocks, transfer ports,
        host, DRAM) starts no earlier than ``t`` — a BARRIER whose release
        time is supplied from outside the chip.  The multi-chip layer uses
        it to stall a shard's flux replay until its halo exchange arrives;
        work already on the clocks is unaffected, so compute that was
        issued before the sync (the overlap window) still runs under the
        in-flight exchange.
        """
        if t > self._barrier_time:
            self._barrier_time = t

    def _compute_start(self, block) -> float:
        """Compute must wait for pending transfers and the last barrier."""
        return max(
            self._block_clock[block],
            self._port_free[("r", block)],
            self._port_free[("w", block)],
            self._barrier_time,
        )

    # ------------------------------------------------------------------ #

    def lower(self, instructions, verify: bool = False) -> ExecutionPlan:
        """Compile ``instructions`` once into a reusable :class:`ExecutionPlan`.

        The plan precomputes every analytic cost and resolves every TRANSFER
        route (once per unique ``(src, dst)`` pair), so replaying it through
        :meth:`run` costs a few vectorized segment reductions plus a
        per-block prefix-max clock advance instead of one Python dispatch
        per instruction — with a bit-identical :class:`TimingReport`
        (see :mod:`repro.pim.plan` for the invariants).
        """
        if verify:
            # imported lazily: the analysis package depends on this module.
            from repro.analysis.checker import check_program, raise_on_errors

            instructions = (
                instructions
                if isinstance(instructions, (list, tuple))
                else list(instructions)
            )
            raise_on_errors(
                check_program(instructions, self.chip), what="lowered stream"
            )
        with get_tracer().span("pim/lower", chip=self.chip.config.name) as sp:
            plan = lower_program(self.chip, self.costs, instructions)
            if sp.name:
                sp.set(
                    n_instructions=plan.n_instructions,
                    n_segments=plan.n_segments,
                    n_transfers=plan.n_transfers,
                    vectorized_fraction=plan.vectorized_fraction,
                )
        metrics = get_metrics()
        if metrics.enabled:
            metrics.inc("executor.plan.lowered")
            metrics.inc("executor.plan.instructions_lowered", plan.n_instructions)
        return plan

    def run(self, instructions, functional: bool = True,
            verify: bool | None = None, serial: bool = False) -> TimingReport:
        """Execute ``instructions`` in program order; returns the report.

        ``instructions`` may be a plain stream or an :class:`ExecutionPlan`
        from :meth:`lower`.  Plan replay is the universal path: raw streams
        are lowered on entry, and analytic, functional *and* fault-injecting
        runs all replay the plan — bit-identically to per-instruction
        dispatch (block state, fault event digests and
        :class:`TimingReport` all match float for float).  A plan lowered
        before the chip's routes changed (``routing_epoch`` mismatch after
        spare-block remapping) is transparently re-lowered, never replayed
        stale.

        ``serial=True`` forces the per-instruction dispatch loop — the
        audit reference the plan path is checked against (PL001–PL004 and
        the bit-identity test sweep); it is not a performance mode.

        ``verify`` overrides the executor-level flag for this run: when
        true, the static checker passes audit the stream first and a
        ``ProgramCheckError`` aborts execution on any error finding.
        """
        plan = instructions if isinstance(instructions, ExecutionPlan) else None
        if plan is not None:
            instructions = plan.instructions
        if self.verify if verify is None else verify:
            # imported lazily: the analysis package depends on this module.
            from repro.analysis.checker import check_program, raise_on_errors

            instructions = (
                instructions
                if isinstance(instructions, (list, tuple))
                else list(instructions)
            )
            raise_on_errors(
                check_program(instructions, self.chip), what="executor stream"
            )
        report = TimingReport()
        faults = self.faults
        faults_on = faults is not None and faults.config.enabled
        if serial:
            plan = None
            mode = "serial"
        else:
            if plan is None:
                plan = self.lower(instructions)
            elif plan.routing_epoch != self.chip.routing_epoch:
                # spare-block remapping moved a block since this plan was
                # lowered: its resolved routes may be stale.  Re-lower
                # against the current topology rather than replaying them.
                plan = self.lower(plan.instructions)
                metrics = get_metrics()
                if metrics.enabled:
                    metrics.inc("executor.plan.relowered")
            mode = "plan"
        counts_before = dict(faults.counts) if faults_on else None
        with get_tracer().span("pim/run", chip=self.chip.config.name,
                               functional=functional, mode=mode) as sp:
            if plan is not None:
                self._run_plan(plan, functional, faults_on, report)
            else:
                for inst in instructions:
                    self._dispatch(inst, functional, report)
            report.total_time_s = self._now()
            report.host_busy_s = self._host_clock
            report.dram_busy_s = self._dram_clock
            report.makespan_cycles = report.total_time_s * self.chip.config.clock_hz
            if plan is not None and plan.schedule_stats is not None:
                report.emission_makespan_cycles = (
                    plan.schedule_stats["emission_makespan_s"]
                    * self.chip.config.clock_hz
                )
            for b, t in self._block_clock.items():
                report.block_busy_s[b] = t
            if counts_before is not None:
                c = faults.counts
                report.faults_injected = c["injected"] - counts_before["injected"]
                report.faults_detected = c["detected"] - counts_before["detected"]
                report.faults_corrected = c["corrected"] - counts_before["corrected"]
                report.faults_uncorrected = (
                    c["uncorrected"] - counts_before["uncorrected"]
                )
                report.retries = c["retries"] - counts_before["retries"]
            self._publish(report, sp, mode)
        return report

    def _publish(self, report: TimingReport, span, mode: str = "serial") -> None:
        """Once-per-run aggregation into the metrics registry and span.

        Deliberately the *only* observability cost of an instruction
        stream: nothing above touches metrics per instruction, so the
        tracing-disabled overhead stays within the BENCH_perf.json guard's
        noise floor.
        """
        cnt = self.counters
        metrics = get_metrics()
        if metrics.enabled:
            clock = self.chip.config.clock_hz
            metrics.inc("executor.runs")
            if mode == "plan":
                metrics.inc("executor.plan.runs")
            else:
                # serial runs are explicit audit-reference requests; the
                # bench's plan-coverage guard excludes them.
                metrics.inc("executor.serial.runs")
            metrics.inc("executor.instructions", report.n_instructions)
            metrics.observe("executor.instructions_per_run", report.n_instructions)
            for op, n in report.op_counts.items():
                metrics.inc(f"executor.ops.{op}", n)
            for phase, t in report.phase_times().items():
                metrics.inc(f"executor.cycles.{phase}", t * clock)
            if report.transfers:
                kind = self.chip.config.interconnect
                metrics.inc(f"interconnect.{kind}.transfers", report.transfers)
                metrics.inc(f"interconnect.{kind}.hops", report.hops)
                metrics.inc(f"interconnect.{kind}.flits", report.flits)
                metrics.inc(f"interconnect.{kind}.bytes", report.bytes_moved)
            if cnt is not None and span.name:
                # per-resource utilization (busy / cumulative makespan) as
                # mergeable histograms: one observation per active block /
                # link per run, so --jobs workers and batched runs fold
                # into one fleet-wide distribution.  Published on *traced*
                # runs only: reading any counter aggregate drains the raw
                # logs (HardwareCounters._finalize), and paying that every
                # bare replay would blow the ≤2% enabled-overhead budget —
                # untraced callers read executor.counters / attribution()
                # when they want the numbers.
                span_s = self._now()
                if span_s > 0.0:
                    for t in cnt.block_busy_s.values():
                        metrics.observe("counters.block_util", t / span_s)
                    for t in cnt.link_busy_s.values():
                        metrics.observe("counters.link_util", t / span_s)
                metrics.inc("counters.runs")
                metrics.inc("counters.transfers_queued", cnt.transfers_queued)
                metrics.inc("counters.transfer_queue_cycles",
                            cnt.transfer_queue_s * clock)
                metrics.inc("counters.host_stall_cycles",
                            cnt.host_stall_s * clock)
                metrics.inc("counters.dram_stall_cycles",
                            cnt.dram_stall_s * clock)
        if span.name:  # live span (tracing enabled)
            clock = self.chip.config.clock_hz
            phases = report.phase_times()
            span.set(
                n_instructions=report.n_instructions,
                total_time_s=report.total_time_s,
                dynamic_energy_j=report.dynamic_energy_j,
                transfers=report.transfers,
                hops=report.hops,
                makespan_cycles=report.makespan_cycles,
                emission_makespan_cycles=report.emission_makespan_cycles,
                phase_times_s=phases,
                phase_cycles={p: t * clock for p, t in phases.items()},
            )
            if cnt is not None:
                # attribution + the per-resource Gantt only on profiled
                # runs: the sweep is O(events log events), far too big a
                # bill for the counters-only fast path.
                attrib = self.attribution()
                span.set(
                    binding_resource=attrib.binding_resource,
                    binding_share=attrib.binding_share,
                    idle_fraction=attrib.idle_fraction,
                    block_util=attrib.block_util,
                    link_util=attrib.link_util,
                    chrome_events=counter_track_events(
                        cnt, origin_s=span.start_s,
                        link_label=self.chip.link_label,
                    ),
                )

    def attribution(self):
        """Makespan attribution of everything recorded since the last
        :meth:`reset_clocks`, in chip clock cycles with chip-aware link
        labels.  Requires an attached counters recorder."""
        if self.counters is None:
            raise ValueError(
                "no counters attached: construct with counters=True or set "
                "REPRO_COUNTERS=1"
            )
        return attribute_makespan(
            self.counters,
            total_time_s=self._now(),
            clock_hz=self.chip.config.clock_hz,
            link_label=self.chip.link_label,
        )

    # -- plan replay ------------------------------------------------------- #

    def _run_plan(self, plan: ExecutionPlan, functional: bool,
                  faults_on: bool, report: TimingReport) -> None:
        """Replay a lowered plan: vectorized accounting, serial semantics.

        Walks the plan's step list instead of the instruction stream.
        Compute segments advance each block's clock by an exact left-fold
        of precomputed durations from the serial starting point
        (``_compute_start`` dominates after the first op, see
        :mod:`repro.pim.plan`), fold the report accumulators in stream
        order and — when ``functional`` — execute the segment's batched
        word-level apply program; TRANSFERs run a precomputed fast path;
        everything that couples multiple clocks (LUT/HOSTOP/DRAM/BARRIER)
        dispatches through the unchanged serial handlers.  Bit-identical
        to ``run(plan.instructions, serial=True)``.
        """
        plan.replays += 1
        insts = plan.instructions
        if faults_on:
            self._run_plan_faulty(plan, functional, report)
            return
        bc = self._block_clock
        pf = self._port_free
        cnt = self.counters
        # deferred counter recording: the whole plan is logged once up
        # front and the hot loop appends only one float per (segment,
        # block) through a bound list.append — the ≤2% enabled-overhead
        # budget lives or dies here (aggregation re-walks plan.steps at
        # the counters' first read).
        if cnt is not None:
            cnt._fold = fold_array
            cnt._seg_kind = STEP_SEGMENT
            cnt.plan_log.append(plan)
            s_app = cnt.start_log.append
        else:
            s_app = None
        time_by_tag = report.time_by_tag
        energy_by_tag = report.energy_by_tag
        for kind, payload in plan.steps:
            if kind == STEP_SEGMENT:
                for tag, durs, ens in payload.tag_groups:
                    time_by_tag[tag] = fold_array(time_by_tag[tag], durs)
                    energy_by_tag[tag] = fold_array(energy_by_tag[tag], ens)
                report.dynamic_energy_j = fold_array(
                    report.dynamic_energy_j, payload.energies
                )
                report.op_counts.update(payload.op_counts)
                report.n_instructions += payload.n
                barrier = self._barrier_time
                if s_app is None:
                    for block, durs, _nors, _ops in payload.block_groups:
                        # defaultdict lookups deliberately mirror
                        # _compute_start (they insert missing keys, which
                        # _now() later reads).
                        start = max(
                            bc[block], pf[("r", block)], pf[("w", block)],
                            barrier,
                        )
                        bc[block] = fold_array(start, durs)
                else:
                    # recording twin of the loop above: the only extra work
                    # per block is one float append — ends are recomputed
                    # lazily from the same fold at the counters' first read.
                    for block, durs, _nors, _ops in payload.block_groups:
                        start = max(
                            bc[block], pf[("r", block)], pf[("w", block)],
                            barrier,
                        )
                        bc[block] = fold_array(start, durs)
                        s_app(start)
                if functional:
                    self._segment_apply(payload, insts)
            elif kind == STEP_TRANSFER:
                self._transfer_step(payload, functional, report)
            else:  # STEP_DISPATCH
                self._dispatch(insts[payload], functional, report)

    def _run_plan_faulty(self, plan: ExecutionPlan, functional: bool,
                         report: TimingReport) -> None:
        """Fault-mode plan replay: per-instruction, every cost precomputed.

        Fault overheads advance block clocks mid-segment, so segments walk
        one instruction at a time — but the dispatch if-chain, the cost
        recomputation and the per-draw RNG round-trips are all gone:
        durations/energies/NOR counts come from the plan array and the
        transient-flip stream is pre-drawn vectorized
        (:meth:`~repro.faults.model.FaultModel.draw_flips`).  Event logs,
        digests and reports stay bit-identical to serial dispatch.
        """
        insts = plan.instructions
        arr = plan.array
        durs = arr["dur"]
        energies = arr["energy"]
        nors_col = arr["nors"]
        flips = self._predraw_flips(plan)
        cnt = self.counters
        for kind, payload in plan.steps:
            if kind == STEP_SEGMENT:
                for i in range(payload.start, payload.stop):
                    inst = insts[i]
                    dur = float(durs[i])
                    energy = float(energies[i])
                    start = self._compute_start(inst.block)
                    self._block_clock[inst.block] = start + dur
                    if cnt is not None:
                        cnt.compute(inst.block, start, start + dur,
                                    int(nors_col[i]))
                    if functional:
                        self._apply_functional(inst)
                    report.add(inst.tag, inst.op, dur, energy)
                    nors = int(nors_col[i])
                    if nors:
                        self._apply_compute_faults(
                            inst, functional, report, dur, energy, nors,
                            flips.get(i) if flips is not None else None,
                        )
            elif kind == STEP_TRANSFER:
                self._transfer_step(payload, functional, report)
            else:  # STEP_DISPATCH
                self._dispatch(insts[payload], functional, report)

    def _predraw_flips(self, plan: ExecutionPlan):
        """Vector-draw the whole plan's transient flips up front.

        Flip draws come from their own sequential substream, independent
        of the transfer and stuck-cell streams, so consuming the entire
        run's draws before replay leaves every other draw unchanged.  The
        per-instruction hit probabilities (a handful of unique
        ``(nors, n_rows)`` exposures) are memoized on the plan.
        """
        f = self.faults
        rate = f.config.flip_rate
        if rate <= 0.0:
            return None
        cache = plan.flip_cache
        if cache is None or cache[0] != rate:
            arr = plan.array
            elig = np.flatnonzero(
                np.isin(arr["op"], _FLIP_OP_IDS) & (arr["n_rows"] > 0)
            )
            nors = arr["nors"][elig]
            n_rows = arr["n_rows"][elig]
            base = math.log1p(-min(rate, 0.5))
            memo: dict = {}
            ps = np.empty(elig.shape[0])
            for k in range(elig.shape[0]):
                key = (int(nors[k]), int(n_rows[k]))
                p = memo.get(key)
                if p is None:
                    # the exact draw_flip expression (association included)
                    p = memo[key] = -math.expm1(base * key[0] * key[1])
                ps[k] = p
            cache = plan.flip_cache = (rate, elig, ps, n_rows)
        _, elig, ps, n_rows = cache
        hits = f.draw_flips(ps, n_rows)
        return {int(elig[k]): v for k, v in hits.items()}

    def _segment_apply(self, seg, insts) -> None:
        """Execute one segment's functional effects (fault-free fast path).

        The batched program is built lazily on the first functional replay
        (see :meth:`~repro.pim.plan._VecSegment.build_apply`); bounds were
        validated at build time, so replay is raw float32 column math —
        elementwise identical to the serial :class:`MemoryBlock` calls.
        """
        prog = seg.apply
        if prog is None:
            prog = seg.build_apply(insts, self.chip)
        block = self.chip.block
        for step in prog:
            kind = step[0]
            if kind == APPLY_ARITH_BATCH:
                _, b, sel, fn, dsts, s1s, s2s = step
                d = block(b).data
                d[sel, dsts] = fn(d[sel, s1s], d[sel, s2s])
            elif kind == APPLY_ARITH:
                _, b, sel, fn, dst, s1, s2 = step
                d = block(b).data
                d[sel, dst] = fn(d[sel, s1], d[sel, s2])
            elif kind == APPLY_GATHER:
                _, b, sel, dst, src, row_map = step
                d = block(b).data
                d[sel, dst] = d[row_map, src]
            elif kind == APPLY_COPY_BATCH:
                _, b, sel, dsts, s1s = step
                d = block(b).data
                d[sel, dsts] = d[sel, s1s]
            elif kind == APPLY_COPY:
                _, b, sel, dst, s1 = step
                d = block(b).data
                d[sel, dst] = d[sel, s1]
            else:  # APPLY_BROADCAST
                _, b, sel, dst, value = step
                block(b).data[sel, dst] = value

    def _apply_functional(self, inst: Instruction) -> None:
        """Serial functional semantics of one compute op (fault-mode path)."""
        op = inst.op
        blk = self.chip.block(inst.block)
        if op in ARITHMETIC_OPS:
            getattr(blk, op.value)(inst.rows, inst.dst, inst.src1, inst.src2)
        elif op is Opcode.COPY:
            blk.copy_column(inst.rows, inst.dst, inst.src1)
        elif op is Opcode.GATHER:
            blk.gather(inst.rows, inst.dst, inst.src1, inst.row_map)
        else:  # BROADCAST
            blk.broadcast(inst.rows, inst.dst, inst.value)

    def _transfer_step(self, t, functional: bool, report: TimingReport) -> None:
        """TRANSFER with route and latencies precomputed at lower time.

        Replays :meth:`_transfer` exactly — including the fault branch:
        the retry/backoff arithmetic reuses the precomputed phase
        latencies with the serial handler's expression order, and
        functional delivery indexes block state through the precomputed
        row selectors.  Only the data-dependent readiness ``max``, the
        switch/port updates and the seeded fault draws happen at run time.
        """
        f = self.faults
        fplan = None
        if f is not None and f.config.any_transfer_faults:
            n_sw = t.n_switches
            fplan = f.transfer_plan(
                t.keys, lambda _tile: n_sw, where=t.where
            )
        dur = t.dur
        attempts = 1
        backoff = 0.0
        delivered = True
        if fplan is not None:
            attempts, backoff, delivered = (
                fplan.attempts, fplan.backoff_s, fplan.delivered
            )
            # every attempt re-reads the row buffer and re-traverses the
            # wire; only a successful final attempt pays the write-back.
            dur = (
                attempts * (t.read_t + t.wire) + backoff
                + (t.write_t if delivered else 0.0)
            )
        sw = self._switch_free
        pf = self._port_free
        ready = max(
            pf[("r", t.src)],
            pf[("w", t.dst)],
            self._block_clock[t.src],
            self._block_clock[t.dst],
            self._barrier_time,
        )
        ready0 = ready  # port-ready time, before queueing behind switches
        keys = t.keys
        for k in keys:
            ready = max(ready, sw[k])
        finish = ready + dur
        if t.exclusive:
            if fplan is None:
                held = ready + t.read_t + t.wire
            else:
                held = ready + attempts * (t.read_t + t.wire) + backoff
            for k in keys:
                sw[k] = held
        else:
            add = t.flit_train if fplan is None else attempts * t.flit_train
            for k in keys:
                sw[k] += add
        if fplan is None:
            pf[("r", t.src)] = ready + t.read_t + t.flit_train
        else:
            pf[("r", t.src)] = (
                ready + attempts * (t.read_t + t.flit_train) + backoff
            )
        pf[("w", t.dst)] = finish
        energy = t.energy
        if fplan is not None and attempts > 1:
            # retransmissions repeat the row reads and switch traversals.
            energy = attempts * energy
        hops = t.hops if fplan is None else t.hops * attempts
        flits = t.flits if fplan is None else t.flits * attempts
        report.transfers += 1
        report.hops += hops
        report.flits += flits
        report.bytes_moved += t.n_bytes
        cnt = self.counters
        if cnt is not None:
            if fplan is None:
                # deferred record (see HardwareCounters hot-path contract):
                # occupancy/flits/hops all derive from the stable step
                # object at finalize time, so the replay pays one 3-tuple.
                cnt.xfer_log.append((t, ready, ready0))
            else:
                link_busy = (
                    attempts * (t.read_t + t.wire) + backoff
                    if t.exclusive else attempts * t.flit_train
                )
                cnt.transfer(keys, ready, link_busy, flits, hops,
                             t.n_bytes, ready - ready0)
        if fplan is not None and not delivered:
            # undeliverable payload: the destination keeps its stale rows.
            report.add(t.tag, t.op, dur, energy)
            return
        if functional:
            src_vals = self.chip.block(t.src).data[
                t.s_sel, t.src1:t.src1 + t.words
            ]
            if src_vals.shape[0] != t.n_rows:
                raise ValueError("TRANSFER src/dst row selections must match in size")
            dblk = self.chip.block(t.dst)
            dblk.data[t.d_sel, t.dst_col:t.dst_col + t.words] = src_vals
            if fplan is not None and fplan.corrupt_payload:
                # undetected corruption (protection off): one flipped bit
                # lands in the delivered payload.
                off, word, bit = f.draw_corrupt_bit(t.n_rows, t.words)
                row = self._abs_row(t.d_rows, off)
                dblk.flip_bit(row, t.dst_col + word, bit)
        report.add(t.tag, t.op, dur, energy)

    # ------------------------------------------------------------------ #

    def _dispatch(self, inst: Instruction, functional: bool, report: TimingReport) -> None:
        op = inst.op
        if op in ARITHMETIC_OPS:
            self._arith(inst, functional, report)
        elif op is Opcode.COPY:
            self._copy(inst, functional, report)
        elif op is Opcode.GATHER:
            self._gather(inst, functional, report)
        elif op is Opcode.BROADCAST:
            self._broadcast(inst, functional, report)
        elif op is Opcode.TRANSFER:
            self._transfer(inst, functional, report)
        elif op is Opcode.LUT:
            self._lut(inst, functional, report)
        elif op is Opcode.HOSTOP:
            self._hostop(inst, report)
        elif op in (Opcode.DRAM_LOAD, Opcode.DRAM_STORE):
            self._dram(inst, report)
        elif op is Opcode.BARRIER:
            self._barrier(report)
        else:  # pragma: no cover - exhaustive
            raise ValueError(f"unhandled opcode {op}")

    # -- fault hooks ------------------------------------------------------- #

    @staticmethod
    def _abs_row(rows, offset: int) -> int:
        """Absolute row index of the ``offset``-th row of a selection."""
        if isinstance(rows, tuple):
            return rows[0] + offset
        return int(np.asarray(rows)[offset])

    def _compute_faults(self, inst: Instruction, functional: bool,
                        report: TimingReport, dur: float, energy: float,
                        nors: int) -> None:
        """Inject device faults into one NOR-based compute op (arith/COPY).

        Called only when a fault model with non-zero rates is attached.
        The serial audit path draws the flip here; the plan path pre-draws
        the whole stream (:meth:`_predraw_flips`) and calls
        :meth:`_apply_compute_faults` directly — same stream, same order,
        same outcomes.
        """
        flip = self.faults.draw_flip(nors, inst.n_rows)
        self._apply_compute_faults(inst, functional, report, dur, energy,
                                   nors, flip)

    def _apply_compute_faults(self, inst: Instruction, functional: bool,
                              report: TimingReport, dur: float, energy: float,
                              nors: int, flip) -> None:
        """Apply one compute op's fault outcomes (flip pre-drawn by caller).

        Recovery work (parity upkeep, detect-and-recompute) is charged as
        overhead under the instruction's tag and advances the block clock,
        so mitigation shows up in the timing report, not just the counters.
        """
        f = self.faults
        cfg = f.config
        f.record_nor(inst.block, nors)
        overhead = 0.0
        o_energy = 0.0
        if cfg.protect:
            # parity-row upkeep: one row-parallel copy updates the
            # checksum column after every protected compute op.
            overhead += _COPY_NORS * self.costs.device.t_nor_s
            o_energy += _COPY_NORS * 32 * self.costs.device.e_nor_j * inst.n_rows

        if flip is not None:
            off, bit = flip
            f.count("injected")
            if cfg.protect:
                # parity mismatch on the written column: recompute once.
                f.count("detected")
                f.count("corrected")
                f.record("flip", f"block:{inst.block}", corrected=True,
                         detail=f"{inst.op.value} bit {bit}")
                with get_tracer().span("faults/recompute", block=inst.block,
                                       op=inst.op.value):
                    overhead += dur
                    o_energy += energy
                # the recompute restores the correct result, so the
                # functional state needs no mutation.
            else:
                f.count("uncorrected")
                f.record("flip", f"block:{inst.block}", corrected=False,
                         detail=f"{inst.op.value} bit {bit}")
                if functional and inst.dst is not None:
                    row = self._abs_row(inst.rows, off)
                    self.chip.block(inst.block).flip_bit(row, inst.dst, bit)

        if cfg.stuck_cell_rate > 0.0 and inst.dst is not None:
            cc = self.chip.config
            stuck = f.stuck_cells(inst.block, cc.block_rows, cc.row_words).get(inst.dst)
            if stuck is not None:
                s_rows, s_bits, s_vals = stuck
                if isinstance(inst.rows, tuple):
                    hit = (s_rows >= inst.rows[0]) & (s_rows < inst.rows[1])
                else:
                    hit = np.isin(s_rows, np.asarray(inst.rows))
                n_hit = int(hit.sum())
                if n_hit:
                    f.count("injected", n_hit)
                    if cfg.protect:
                        # the parity check flags the column, but a stuck
                        # cell survives the recompute: detected, charged,
                        # still wrong — the mapper's remap is the real fix.
                        f.count("detected", n_hit)
                        with get_tracer().span("faults/recompute",
                                               block=inst.block,
                                               op=inst.op.value):
                            overhead += dur
                            o_energy += energy
                    f.count("uncorrected", n_hit)
                    f.record("stuck", f"block:{inst.block}", corrected=False,
                             detail=f"col {inst.dst}, {n_hit} cells")
                    if functional:
                        self.chip.block(inst.block).force_bits(
                            s_rows[hit], inst.dst, s_bits[hit], s_vals[hit]
                        )
        if overhead:
            start = self._block_clock[inst.block]
            self._block_clock[inst.block] = start + overhead
            if self.counters is not None:
                # recovery work occupies the block but retires no op
                self.counters.compute(inst.block, start, start + overhead,
                                      ops=0)
            report.add_overhead(inst.tag, overhead, o_energy)

    # -- individual opcodes ------------------------------------------------ #

    def _arith(self, inst: Instruction, functional: bool, report: TimingReport) -> None:
        dur = self.costs.time_s(inst.op.value)
        energy = self.costs.energy_j(inst.op.value, active_rows=inst.n_rows)
        start = self._compute_start(inst.block)
        self._block_clock[inst.block] = start + dur
        if self.counters is not None:
            self.counters.compute(inst.block, start, start + dur,
                                  self.costs.nor_count(inst.op.value))
        if functional:
            blk = self.chip.block(inst.block)
            getattr(blk, inst.op.value)(inst.rows, inst.dst, inst.src1, inst.src2)
        report.add(inst.tag, inst.op, dur, energy)
        if self.faults is not None and self.faults.config.enabled:
            self._compute_faults(inst, functional, report, dur, energy,
                                 self.costs.nor_count(inst.op.value))

    def _copy(self, inst: Instruction, functional: bool, report: TimingReport) -> None:
        dur = _COPY_NORS * self.costs.device.t_nor_s
        energy = _COPY_NORS * 32 * self.costs.device.e_nor_j * inst.n_rows
        start = self._compute_start(inst.block)
        self._block_clock[inst.block] = start + dur
        if self.counters is not None:
            self.counters.compute(inst.block, start, start + dur, _COPY_NORS)
        if functional:
            self.chip.block(inst.block).copy_column(inst.rows, inst.dst, inst.src1)
        report.add(inst.tag, inst.op, dur, energy)
        if self.faults is not None and self.faults.config.enabled:
            self._compute_faults(inst, functional, report, dur, energy, _COPY_NORS)

    def _gather(self, inst: Instruction, functional: bool, report: TimingReport) -> None:
        n_unique = inst.n_unique_rows
        if n_unique is None:  # hand-built instruction: derive on the spot
            n_unique = len(np.unique(np.asarray(inst.row_map)))
        dur = self.costs.gather_time_s(n_unique)
        energy = self.costs.row_move_energy_j(inst.n_rows, words=inst.words)
        start = self._compute_start(inst.block)
        self._block_clock[inst.block] = start + dur
        if self.counters is not None:
            self.counters.compute(inst.block, start, start + dur)
        if functional:
            self.chip.block(inst.block).gather(inst.rows, inst.dst, inst.src1, inst.row_map)
        report.add(inst.tag, inst.op, dur, energy)

    def _broadcast(self, inst: Instruction, functional: bool, report: TimingReport) -> None:
        value = np.asarray(inst.value)
        if value.ndim == 0:
            # scalar constant: fill the column buffer once, one
            # column-parallel write through the column drivers.
            dur = 2 * self.costs.device.t_row_write_s
        else:
            # per-row data arrives from outside the block (host/DRAM) and
            # streams in row by row — the cost Fig. 6 hoists out of the
            # batch loop by broadcasting constants only once.
            dur = self.costs.broadcast_time_s(inst.n_rows)
        energy = self.costs.row_move_energy_j(inst.n_rows, words=inst.words)
        start = self._compute_start(inst.block)
        self._block_clock[inst.block] = start + dur
        if self.counters is not None:
            self.counters.compute(inst.block, start, start + dur)
        if functional:
            self.chip.block(inst.block).broadcast(inst.rows, inst.dst, inst.value)
        report.add(inst.tag, inst.op, dur, energy)

    def _transfer_path(self, src: int, dst: int):
        """(occupied switch keys, wire hops) of an inter-block transfer.

        The topology is static, so the path is memoized per (chip, src,
        dst) on the chip model itself — see :meth:`PimChip.transfer_path`.
        """
        keys, hops, extra, _ = self.chip.transfer_path(src, dst)
        return keys, hops, extra

    def _transfer(self, inst: Instruction, functional: bool, report: TimingReport) -> None:
        src, dst = inst.src_block, inst.block
        if src is None:
            raise ValueError("TRANSFER needs src_block")
        dev = self.costs.device
        n_rows = inst.n_rows
        keys, hops, extra, ic = self.chip.transfer_path(src, dst)
        flits = -(-(n_rows * inst.words) // ic.flit_words)
        wire = hops * ic.hop_latency_per_flit * flits + extra
        read_t = n_rows * dev.t_row_read_s
        write_t = n_rows * dev.t_row_write_s
        dur = read_t + wire + write_t

        # interconnect faults: switch failures, dropped/corrupted payloads.
        plan = None
        f = self.faults
        if f is not None and f.config.any_transfer_faults:
            plan = f.transfer_plan(
                keys, lambda _tile: ic.n_switches, where=f"transfer:{src}->{dst}"
            )
        attempts = 1
        backoff = 0.0
        delivered = True
        if plan is not None:
            attempts, backoff, delivered = plan.attempts, plan.backoff_s, plan.delivered
            # every attempt re-reads the row buffer and re-traverses the
            # wire; only a successful final attempt pays the write-back.
            dur = attempts * (read_t + wire) + backoff + (write_t if delivered else 0.0)

        # The source/destination ports are busy for the whole transfer.  On
        # the H-tree, switches are only held during the wire phase
        # (store-and-forward pipelining: disjoint sub-trees overlap, §4.2.1);
        # the exclusive Bus holds its switch end-to-end ("only one data path
        # can be enabled", §4.2.2).
        exclusive = ic.exclusive
        flit_train = ic.hop_latency_per_flit * flits
        # the source's read port and the destination's write port gate the
        # transfer; compute on either block must also have drained.
        ready = max(
            self._port_free[("r", src)],
            self._port_free[("w", dst)],
            self._block_clock[src],
            self._block_clock[dst],
            self._barrier_time,
        )
        ready0 = ready  # port-ready time, before queueing behind switches
        if exclusive:
            # "only one data path can be enabled when using the bus
            # interconnection" (§4.2.2): the switch is held for the row
            # read and the wire traversal; the destination's write-back
            # overlaps the next arbitration.
            for k in keys:
                ready = max(ready, self._switch_free[k])
            finish = ready + dur
            for k in keys:
                if plan is None:
                    self._switch_free[k] = ready + read_t + wire
                else:
                    self._switch_free[k] = ready + attempts * (read_t + wire) + backoff
            link_busy = (
                read_t + wire if plan is None
                else attempts * (read_t + wire) + backoff
            )
        else:
            # H-tree switches behave as pipelined FIFO servers: each one
            # serves a transfer for one flit-train (wormhole cut-through),
            # so disjoint sub-trees — and back-to-back transfers through
            # the same switch — overlap (§4.2.1).  The gate is the switch's
            # *cumulative service load*, not the last reservation time:
            # a transfer that starts late (blocked on a port) does not
            # head-of-line-block unrelated traffic through the switch.
            for k in keys:
                ready = max(ready, self._switch_free[k])
            finish = ready + dur
            for k in keys:
                self._switch_free[k] += flit_train if plan is None else attempts * flit_train
            link_busy = flit_train if plan is None else attempts * flit_train
        # the source is free again once the row buffer has drained into the
        # network; the destination holds its write port to the end.  The
        # compute clocks are untouched: ordering against arithmetic is
        # enforced by _compute_start and the ready condition above.
        if plan is None:
            self._port_free[("r", src)] = ready + read_t + flit_train
        else:
            self._port_free[("r", src)] = (
                ready + attempts * (read_t + flit_train) + backoff
            )
        self._port_free[("w", dst)] = finish

        energy = self.costs.row_move_energy_j(n_rows, words=inst.words)
        energy += hops * n_rows * inst.words * dev.e_search_j  # switch traversal
        if plan is not None and attempts > 1:
            # retransmissions repeat the row reads and switch traversals.
            energy = attempts * energy

        n_hops = hops if plan is None else hops * attempts
        n_flits = flits if plan is None else flits * attempts
        report.transfers += 1
        report.hops += n_hops
        report.flits += n_flits
        report.bytes_moved += n_rows * inst.words * 4
        if self.counters is not None:
            self.counters.transfer(
                keys, ready, link_busy, n_flits, n_hops,
                n_rows * inst.words * 4, ready - ready0,
            )

        if plan is not None and not delivered:
            # undeliverable payload: the destination keeps its stale rows.
            report.add(inst.tag, inst.op, dur, energy)
            return
        if functional:
            sblk = self.chip.block(src)
            dblk = self.chip.block(dst)
            sr = inst.src_rows if inst.src_rows is not None else inst.rows
            s_sel = slice(sr[0], sr[1]) if isinstance(sr, tuple) else np.asarray(sr)
            d_sel = (
                slice(inst.rows[0], inst.rows[1])
                if isinstance(inst.rows, tuple)
                else np.asarray(inst.rows)
            )
            src_vals = sblk.data[s_sel, inst.src1:inst.src1 + inst.words]
            if src_vals.shape[0] != n_rows:
                raise ValueError("TRANSFER src/dst row selections must match in size")
            dblk.data[d_sel, inst.dst:inst.dst + inst.words] = src_vals
            if plan is not None and plan.corrupt_payload:
                # undetected corruption (protection off): one flipped bit
                # lands in the delivered payload.
                off, word, bit = f.draw_corrupt_bit(n_rows, inst.words)
                row = self._abs_row(inst.rows, off)
                dblk.flip_bit(row, inst.dst + word, bit)
        report.add(inst.tag, inst.op, dur, energy)

    def _lut(self, inst: Instruction, functional: bool, report: TimingReport) -> None:
        """Alg. 1: R_1 (index fetch), R_2 (content fetch), W_1 (write back).

        ``inst.block`` is the requester, ``inst.src_block`` the LUT block,
        ``inst.rows`` the row range served (vectorized micro-sequence),
        ``src1``/``dst`` the Offset_S / Offset_D word columns.
        """
        dev = self.costs.device
        n = inst.n_rows
        keys, hops, extra, ic = self.chip.transfer_path(inst.src_block, inst.block)
        hop_lat = ic.hop_latency_per_flit
        per_row = 2 * dev.t_row_read_s + dev.t_row_write_s + 2 * (hops * hop_lat + extra)
        dur = n * per_row
        ready = max(
            self._compute_start(inst.block), self._compute_start(inst.src_block)
        )
        ready0 = ready  # block-ready time, before queueing behind switches
        for k in keys:
            ready = max(ready, self._switch_free[k])
        finish = ready + dur
        self._port_free[("w", inst.block)] = finish
        self._port_free[("r", inst.src_block)] = finish
        for k in keys:
            self._switch_free[k] = finish
        energy = n * (2 * dev.e_search_j + 32 * 0.5 * (dev.e_set_j + dev.e_reset_j))

        report.transfers += 1
        report.hops += hops
        report.flits += 2 * n  # index out + entry back, one word each
        report.bytes_moved += 2 * n * 4
        if self.counters is not None:
            # the LUT micro-sequence holds its switches end-to-end
            self.counters.transfer(
                keys, ready, dur, 2 * n, hops, 2 * n * 4, ready - ready0
            )

        if functional:
            req = self.chip.block(inst.block)
            lut = self.chip.block(inst.src_block)
            for r in range(inst.rows[0], inst.rows[1]):
                index = int(req.data[r, inst.src1])
                lr, lc = divmod(index, lut.row_words)
                req.data[r, inst.dst] = lut.data[lr, lc]
        report.add(inst.tag, inst.op, dur, energy)

    def _hostop(self, inst: Instruction, report: TimingReport) -> None:
        dur = self.host.time_s(inst.count)
        energy = self.host.energy_j(inst.count)
        start = max(self._host_clock, self._barrier_time)
        if self.counters is not None:
            self.counters.host(start, start + dur, start - self._host_clock)
        self._host_clock = start + dur
        report.add(inst.tag or "host", inst.op, dur, energy)

    def _dram(self, inst: Instruction, report: TimingReport) -> None:
        n_bytes = inst.meta.get("bytes", inst.words * 4 * max(inst.n_rows, 1))
        dur = self.chip.hbm.transfer_time_s(n_bytes)
        energy = self.chip.hbm.transfer_energy_j(n_bytes)
        start = max(self._dram_clock, self._barrier_time)
        if inst.block is not None:
            start = max(start, self._block_clock[inst.block])
        finish = start + dur
        if self.counters is not None:
            self.counters.dram(start, finish, start - self._dram_clock,
                               block=inst.block)
        self._dram_clock = finish
        if inst.block is not None:
            self._block_clock[inst.block] = finish
        report.add(inst.tag or "dram", inst.op, dur, energy)

    def _barrier(self, report: TimingReport) -> None:
        now = self._now()
        for b in list(self._block_clock):
            self._block_clock[b] = now
        for k in list(self._port_free):
            self._port_free[k] = now
        self._host_clock = now
        self._dram_clock = now
        self._barrier_time = now


#: Convenience alias: a single-block executor is just a chip executor used
#: with instructions targeting one block.
BlockExecutor = ChipExecutor
