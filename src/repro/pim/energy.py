"""Energy accounting and the Table 3 power reproduction.

Total energy follows the paper's measurement granularity ("the energy is
measured from the total power consumption of both host CPU and
accelerator", §7.2)::

    E = P_static(chip, interconnect) * T_total  +  E_dynamic(ops)
      + P_HBM * T_dram_busy

:func:`chip_power_table` re-derives every row of Table 3 from the
component constants so the tests (and EXPERIMENTS.md) can compare the
totals against the paper's printed 115.02 W / 109.25 W.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.interconnect.htree import HTree
from repro.pim.params import ChipConfig, ComponentPower

__all__ = ["EnergyAccount", "chip_power_table"]


@dataclass
class EnergyAccount:
    """Accumulates named energy contributions (joules)."""

    components: dict = field(default_factory=dict)

    def add(self, name: str, joules: float) -> None:
        if joules < 0:
            raise ValueError(f"negative energy for {name}: {joules}")
        self.components[name] = self.components.get(name, 0.0) + joules

    @property
    def total_j(self) -> float:
        return sum(self.components.values())

    def merge(self, other: "EnergyAccount") -> None:
        for k, v in other.components.items():
            self.add(k, v)

    def breakdown(self) -> dict:
        total = self.total_j
        if total == 0:
            return {k: 0.0 for k in self.components}
        return {k: v / total for k, v in self.components.items()}

    def publish(self, registry, prefix: str = "energy_j") -> None:
        """Fold the components into a metrics registry as counters.

        ``registry`` is a :class:`repro.obs.MetricsRegistry`; each
        component becomes ``<prefix>.<name>`` (joules accumulate across
        calls, matching counter semantics).
        """
        for name, joules in self.components.items():
            registry.inc(f"{prefix}.{name}", joules)


def chip_power_table(config: ChipConfig) -> dict:
    """Reproduce Table 3 for an arbitrary chip configuration.

    Returns rows keyed like the paper's table, all in watts, for both
    interconnects, derived purely from :class:`ComponentPower`.
    """
    p: ComponentPower = config.power
    bpt = config.blocks_per_tile
    htree = HTree(n_blocks=bpt)
    rows = {
        "crossbar_array_w": p.crossbar_array_w,
        "sense_amp_w": p.sense_amp_w,
        "decoder_w": p.decoder_w,
        "memory_block_w": p.block_w,
        "tile_memory_w": p.tile_memory_w(bpt),
        "htree_switch_count": htree.n_switches,
        "htree_switches_w": p.htree_switches_per_tile_w,
        "bus_switch_w": p.bus_switch_w,
        "tile_w_htree": p.tile_w("htree", bpt),
        "tile_w_bus": p.tile_w("bus", bpt),
        "central_controller_w": p.central_controller_w,
        "cpu_host_w": p.cpu_host_w,
        "n_tiles": config.n_tiles,
        "total_w_htree": config.n_tiles * p.tile_w("htree", bpt)
        + p.central_controller_w
        + p.cpu_host_w,
        "total_w_bus": config.n_tiles * p.tile_w("bus", bpt)
        + p.central_controller_w
        + p.cpu_host_w,
    }
    return rows
