"""4-ary H-tree interconnect (paper §4.2.1).

Blocks are the leaves of a 4-ary tree; a 256-block tile has 64 level-0
(S0), 16 level-1, 4 level-2 and 1 level-3 switch — 85 switches, matching
the paper's count for a 256-block memory tile.

Block indices are interpreted as Morton (Z-order) codes of the block's 2-D
position in the tile, so the four blocks of each 2x2 quad share an S0
switch.  A transfer between two blocks under the same S0 occupies exactly
one switch ("the data will only pass through one S0 H-tree switch", §4.2.1);
otherwise the path climbs to the lowest common ancestor and back down.

The H-tree generalizes to any power-of-``fanout`` block count and to
fanouts other than 4 ("the number of children of a tree node does not have
to be 4", §4.2.1) — used by the ablation benchmarks.
"""

from __future__ import annotations

from repro.interconnect.topology import Interconnect

__all__ = ["HTree", "morton_encode", "morton_decode"]

#: Table 3: 85 H-tree switches draw 107.13 mW in a 2 GB-chip tile.
HTREE_TILE_POWER_W = 0.10713
HTREE_TILE_SWITCHES = 85


def morton_encode(row: int, col: int) -> int:
    """Interleave the bits of a 2-D grid position into a Z-order index."""
    code = 0
    for bit in range(max(row.bit_length(), col.bit_length(), 1)):
        code |= ((col >> bit) & 1) << (2 * bit)
        code |= ((row >> bit) & 1) << (2 * bit + 1)
    return code


def morton_decode(code: int) -> tuple[int, int]:
    """Inverse of :func:`morton_encode`; returns ``(row, col)``."""
    row = col = 0
    bit = 0
    while code >> (2 * bit):
        col |= ((code >> (2 * bit)) & 1) << bit
        row |= ((code >> (2 * bit + 1)) & 1) << bit
        bit += 1
    return row, col


class HTree(Interconnect):
    """H-tree over ``n_blocks`` leaves with the given switch fanout."""

    def __init__(self, n_blocks: int = 256, fanout: int = 4):
        super().__init__(n_blocks)
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        self.fanout = fanout
        # number of levels: smallest L with fanout^L >= n_blocks
        levels = 0
        cap = 1
        while cap < n_blocks:
            cap *= fanout
            levels += 1
        self.levels = max(levels, 1)
        #: switches per level, level 0 nearest the blocks.
        self.switches_per_level = [
            self._ceil_div(n_blocks, fanout ** (lvl + 1)) for lvl in range(self.levels)
        ]
        self._level_offsets = [0]
        for c in self.switches_per_level[:-1]:
            self._level_offsets.append(self._level_offsets[-1] + c)

    @staticmethod
    def _ceil_div(a: int, b: int) -> int:
        return -(-a // b)

    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:
        return "htree"

    @property
    def n_switches(self) -> int:
        return sum(self.switches_per_level)

    @property
    def switch_power_w(self) -> float:
        """Static switch power, scaled from Table 3's 85-switch tile."""
        return HTREE_TILE_POWER_W * self.n_switches / HTREE_TILE_SWITCHES

    def switch_id(self, level: int, local: int) -> int:
        """Global id of the ``local``-th switch at ``level``."""
        if not 0 <= level < self.levels:
            raise IndexError(f"level {level} outside [0, {self.levels})")
        if not 0 <= local < self.switches_per_level[level]:
            raise IndexError(f"switch {local} outside level {level}")
        return self._level_offsets[level] + local

    def switch_level(self, switch_id: int) -> int:
        """Invert :meth:`switch_id`: the tree level a global id sits at."""
        if not 0 <= switch_id < self.n_switches:
            raise IndexError(f"switch {switch_id} outside tile of {self.n_switches}")
        level = 0
        for lvl, off in enumerate(self._level_offsets):
            if switch_id >= off:
                level = lvl
        return level

    def switch_label(self, switch_id: int) -> str:
        """``S<level>.<local>`` — the paper's S0/S1/... naming (§4.2.1)."""
        level = self.switch_level(switch_id)
        return f"S{level}.{switch_id - self._level_offsets[level]}"

    def _ancestor(self, block: int, level: int) -> int:
        """Local id of ``block``'s ancestor switch at ``level``."""
        return block // (self.fanout ** (level + 1))

    def path(self, src: int, dst: int) -> tuple:
        """Switch ids on the unique tree path between two blocks.

        ``src == dst`` is an intra-block move and uses no switches.
        """
        self._check_block(src)
        self._check_block(dst)
        if src == dst:
            return ()
        # climb until ancestors coincide
        lca = 0
        while self._ancestor(src, lca) != self._ancestor(dst, lca):
            lca += 1
        up = [self.switch_id(lvl, self._ancestor(src, lvl)) for lvl in range(lca + 1)]
        down = [self.switch_id(lvl, self._ancestor(dst, lvl)) for lvl in range(lca)]
        return tuple(up + list(reversed(down)))

    def path_to_root(self, block: int) -> tuple:
        """The full ancestor switch chain (used for inter-tile egress)."""
        self._check_block(block)
        return tuple(
            self.switch_id(lvl, self._ancestor(block, lvl)) for lvl in range(self.levels)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HTree(n_blocks={self.n_blocks}, fanout={self.fanout}, "
            f"switches={self.n_switches})"
        )
