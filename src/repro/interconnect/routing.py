"""Conflict-aware transfer scheduling.

Greedy list scheduling: transfers are considered in issue order; each
starts as soon as (a) every switch on its path, (b) the source block's read
port, and (c) the destination block's write port are free.  This is the
behaviour the paper describes — H-tree transfers with disjoint paths "can
be processed simultaneously" while "the bus switch processes these
transmissions sequentially" (§4.2.2) — and is what yields Fig. 14's gap.

The model charges each transfer::

    duration = read_rows * t_read_row          (load cells -> row buffer)
             + hops * hop_latency * words      (switch traversal)
             + read_rows * t_write_row         (row buffer -> cells)

where ``read_rows = ceil(words / words_per_row)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.interconnect.topology import Interconnect, ScheduledTransfer, Transfer

__all__ = ["schedule_transfers", "ScheduleResult", "RouteTable"]

#: 32-bit words per 1024-bit row buffer.
WORDS_PER_ROW = 32


class RouteTable:
    """Memoized per-``(src, dst)`` routes and flit latencies of one topology.

    The switch path of a static interconnect never changes between
    transfers, yet :func:`schedule_transfers` used to re-walk it twice per
    transfer (once for the switch keys, once inside ``transfer_latency``).
    The table resolves each unique pair once and serves every repeat from a
    dict — and offers explicit :meth:`invalidate` for when the block id ->
    location association *does* change (spare-block remapping; see
    ``PimChip.invalidate_routes`` for the executor-side equivalent).
    """

    def __init__(self, interconnect: Interconnect):
        self.interconnect = interconnect
        self._paths: dict = {}
        #: bumped by :meth:`invalidate`; schedulers and plans holding a
        #: table can compare epochs instead of re-resolving defensively.
        self.epoch = 0

    def path(self, src: int, dst: int) -> list:
        """Memoized ``interconnect.path(src, dst)``."""
        cached = self._paths.get((src, dst))
        if cached is None:
            cached = self._paths[(src, dst)] = self.interconnect.path(src, dst)
        return cached

    def wire_latency(self, src: int, dst: int, words: int) -> float:
        """Flit-train wire latency along the memoized path.

        Same expression as ``Interconnect.transfer_latency`` — hops ×
        per-flit hop latency × flit count — without re-walking the path.
        """
        ic = self.interconnect
        flits = -(-words // ic.flit_words)
        return len(self.path(src, dst)) * ic.hop_latency_per_flit * flits

    def invalidate(self) -> None:
        """Drop every memoized route (the topology's block mapping moved)."""
        self._paths.clear()
        self.epoch += 1


@dataclass
class ScheduleResult:
    """Outcome of scheduling a batch of transfers on one tile."""

    makespan: float
    scheduled: list
    #: total switch-seconds of occupancy (used for dynamic-energy model)
    switch_busy_time: float
    #: retransmissions performed by the fault model (0 without one)
    retries: int = 0
    #: transfers that exhausted their retry budget and never delivered
    undelivered: int = 0

    @property
    def n_transfers(self) -> int:
        return len(self.scheduled)

    def time_by_tag(self) -> dict:
        """Aggregate busy time per transfer tag (Fig. 14 attribution)."""
        out: dict = {}
        for s in self.scheduled:
            out[s.transfer.tag] = out.get(s.transfer.tag, 0.0) + s.duration
        return out


def transfer_duration(
    interconnect: Interconnect,
    transfer: Transfer,
    t_read_row: float,
    t_write_row: float,
) -> float:
    """Unqueued duration of one transfer (see module docstring)."""
    rows = -(-transfer.words // WORDS_PER_ROW)
    wire = interconnect.transfer_latency(transfer)
    return rows * t_read_row + wire + rows * t_write_row


def schedule_transfers(
    interconnect: Interconnect,
    transfers,
    t_read_row: float = 1.5e-9,
    t_write_row: float = 1.5e-9,
    start_time: float = 0.0,
    fault_model=None,
    routes: RouteTable | None = None,
    counters=None,
) -> ScheduleResult:
    """Greedy conflict-aware schedule for a batch of transfers.

    Returns the makespan (relative to ``start_time``) plus the individual
    placements.  Intra-block transfers (``src == dst``) occupy only the
    block itself.

    With a :class:`~repro.faults.model.FaultModel`, each transfer may be
    dropped/corrupted and retried: its occupancy stretches by the extra
    attempts plus exponential backoff, and ``retries``/``undelivered``
    summarize the damage.  Without one the schedule is bit-identical to
    the fault-free model.

    ``routes`` lets callers share a :class:`RouteTable` across batches;
    without one, a table local to this call still collapses the repeated
    path walks of recurring ``(src, dst)`` pairs.

    ``counters`` optionally records each placement into a
    :class:`~repro.obs.counters.HardwareCounters` (per-link occupancy and
    flit counts under ``(0, switch)`` keys, transfer queueing delay) —
    a pure observer, the schedule itself is unchanged.
    """
    switch_free: dict = {}
    port_free: dict = {}
    scheduled = []
    makespan = start_time
    switch_busy = 0.0
    retries = 0
    undelivered = 0
    if routes is None:
        routes = RouteTable(interconnect)
    elif routes.interconnect is not interconnect:
        raise ValueError("RouteTable was built for a different interconnect")

    for tr in transfers:
        path = routes.path(tr.src, tr.dst)
        rows = -(-tr.words // WORDS_PER_ROW)
        dur = (
            rows * t_read_row
            + routes.wire_latency(tr.src, tr.dst, tr.words)
            + rows * t_write_row
        )
        if fault_model is not None and fault_model.config.any_transfer_faults:
            plan = fault_model.transfer_plan(
                [(0, sw) for sw in path],
                lambda _tile: interconnect.n_switches,
                where=f"transfer:{tr.src}->{tr.dst}",
            )
            if plan is not None:
                dur = plan.attempts * dur + plan.backoff_s
                retries += plan.attempts - 1 if plan.delivered else plan.failed - 1
                if not plan.delivered:
                    undelivered += 1
        ready = start_time
        ready = max(ready, port_free.get(("r", tr.src), start_time))
        ready = max(ready, port_free.get(("w", tr.dst), start_time))
        ready0 = ready  # port-ready time, before queueing behind switches
        for sw in path:
            ready = max(ready, switch_free.get(sw, start_time))
        finish = ready + dur
        for sw in path:
            switch_free[sw] = finish
            switch_busy += dur
        port_free[("r", tr.src)] = finish
        port_free[("w", tr.dst)] = finish
        scheduled.append(ScheduledTransfer(transfer=tr, start=ready, finish=finish, path=path))
        makespan = max(makespan, finish)
        if counters is not None:
            flits = -(-tr.words // interconnect.flit_words)
            counters.transfer(
                [(0, sw) for sw in path], ready, dur, flits, len(path),
                tr.words * 4, ready - ready0,
            )

    return ScheduleResult(
        makespan=makespan - start_time,
        scheduled=scheduled,
        switch_busy_time=switch_busy,
        retries=retries,
        undelivered=undelivered,
    )
