"""Single-switch Bus interconnect (paper §4.2.2).

"Only one central bus switch is needed for a bus interconnect" — cheap in
leakage power (17.2 mW vs 107.13 mW for the H-tree, Table 3) but "the bus
switch processes these transmissions sequentially": every transfer in the
tile occupies the one switch, so the conflict scheduler serializes them.
"""

from __future__ import annotations

from repro.interconnect.topology import Interconnect

__all__ = ["Bus"]

#: Table 3: one bus switch draws 17.2 mW.
BUS_SWITCH_POWER_W = 0.0172


class Bus(Interconnect):
    """Tile-wide shared bus: one switch, full serialization."""

    exclusive = True

    def __init__(self, n_blocks: int = 256):
        super().__init__(n_blocks)

    @property
    def name(self) -> str:
        return "bus"

    @property
    def n_switches(self) -> int:
        return 1

    @property
    def switch_power_w(self) -> float:
        return BUS_SWITCH_POWER_W

    def path(self, src: int, dst: int) -> tuple:
        self._check_block(src)
        self._check_block(dst)
        if src == dst:
            return ()
        return (0,)

    def switch_level(self, switch_id: int) -> int:
        """The bus switch is the tile root: losing it cuts off every block."""
        if switch_id != 0:
            raise IndexError(f"switch {switch_id} outside tile of 1")
        return 0

    def switch_label(self, switch_id: int) -> str:
        if switch_id != 0:
            raise IndexError(f"switch {switch_id} outside tile of 1")
        return "bus"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Bus(n_blocks={self.n_blocks})"
