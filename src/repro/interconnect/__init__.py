"""Inter-block interconnect substrate: H-tree and Bus topologies (paper §4.2).

A 256-block memory tile is served either by a 4-ary H-tree (64 + 16 + 4 + 1
= 85 switches, the paper's count) that lets transfers with disjoint switch
paths proceed concurrently, or by a single-switch Bus that serializes every
transfer.  The scheduling model here is what produces the Fig. 14 intra- vs
inter-element split and the ~2x H-tree advantage on flux-heavy phases.
"""

from repro.interconnect.topology import Interconnect, Transfer, ScheduledTransfer
from repro.interconnect.htree import HTree
from repro.interconnect.bus import Bus
from repro.interconnect.routing import schedule_transfers

__all__ = [
    "Interconnect",
    "Transfer",
    "ScheduledTransfer",
    "HTree",
    "Bus",
    "schedule_transfers",
]
