"""Abstract interconnect interface and transfer records.

A *transfer* moves one burst (typically one 1024-bit row-buffer image, or a
few words of it) from a source block to a destination block inside a tile.
The interconnect assigns each transfer a *path* (the ordered list of switch
ids it occupies) and a *latency*; the scheduler in :mod:`routing` then packs
transfers in time subject to switch-occupancy conflicts.

The instruction sequence of the paper's example (§4.2.1) — read I0, memcpy
I1..I3 hop by hop along D0->D1->D2->D3, write I4 — maps to
``read_cost + len(path) * hop_latency + write_cost``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

__all__ = ["Transfer", "ScheduledTransfer", "Interconnect"]


@dataclass(frozen=True)
class Transfer:
    """One inter-block burst.

    Parameters
    ----------
    src, dst:
        Block indices within the tile (0 .. n_blocks-1).
    words:
        Payload size in 32-bit words (a full row buffer is 32 words).
    tag:
        Free-form label used by Fig. 14's intra/inter-element attribution.
    """

    src: int
    dst: int
    words: int = 32
    tag: str = ""


@dataclass
class ScheduledTransfer:
    """A transfer placed in time by the conflict scheduler."""

    transfer: Transfer
    start: float
    finish: float
    path: tuple[int, ...] = field(default_factory=tuple)

    @property
    def duration(self) -> float:
        return self.finish - self.start


class Interconnect(abc.ABC):
    """Common interface for tile-level interconnects.

    Concrete topologies provide switch paths, per-transfer latency, switch
    counts and static power; the conflict scheduler is topology-agnostic.
    """

    #: seconds for one flit to traverse one switch (model parameter,
    #: aligned with the crossbar row access time T_search = 1.5 ns).
    hop_latency_per_flit: float = 1.5e-9

    #: 32-bit words per link flit.  H-tree links are short point-to-point
    #: segments and afford a 128-bit datapath; the Bus is a single long
    #: tile-spanning wire with a 32-bit datapath (which is also why its
    #: switch draws 17.2 mW against the H-tree's 107.13 mW total, Table 3).
    flit_words: int = 4

    #: exclusive interconnects ("only one data path can be enabled when
    #: using the bus interconnection", §4.2.2) hold their switches for the
    #: entire transfer including the row read/write phases; non-exclusive
    #: ones (H-tree) only during the wire phase, letting disjoint sub-trees
    #: transfer simultaneously.
    exclusive: bool = False

    def __init__(self, n_blocks: int):
        if n_blocks < 1:
            raise ValueError("interconnect needs at least one block")
        self.n_blocks = n_blocks

    # -- topology ------------------------------------------------------- #

    @abc.abstractmethod
    def path(self, src: int, dst: int) -> tuple[int, ...]:
        """Ordered switch ids a ``src -> dst`` transfer occupies."""

    def path_to_root(self, block: int) -> tuple[int, ...]:
        """Switch ids from ``block`` up to the tile's root switch.

        Used for transfers that leave the tile through the central
        controller.  Defaults to the path to block 0's top ancestor; the
        H-tree overrides with the exact ancestor chain.
        """
        self._check_block(block)
        return self.path(block, block ^ 1) if self.n_blocks > 1 else ()

    @property
    @abc.abstractmethod
    def n_switches(self) -> int:
        """Total number of switches in the tile."""

    def switch_ids(self) -> range:
        """All switch ids of the tile (fault-injection enumeration)."""
        return range(self.n_switches)

    def switch_level(self, switch_id: int) -> int:
        """Tree level of a switch (0 = leaf level).

        Flat topologies have a single level; the H-tree overrides this
        with the exact level so fault reports can tell a leaf switch
        (4 blocks unreachable) from the root (the whole tile cut off).
        """
        if not 0 <= switch_id < self.n_switches:
            raise IndexError(f"switch {switch_id} outside tile of {self.n_switches}")
        return 0

    def switch_label(self, switch_id: int) -> str:
        """Human name of a switch for counter timelines and reports.

        Topologies with structure override this (H-tree: ``S<level>.<n>``,
        Bus: ``bus``); the default is the bare id.
        """
        if not 0 <= switch_id < self.n_switches:
            raise IndexError(f"switch {switch_id} outside tile of {self.n_switches}")
        return f"s{switch_id}"

    @property
    @abc.abstractmethod
    def switch_power_w(self) -> float:
        """Total static switch power for one tile (Table 3)."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        ...

    # -- latency -------------------------------------------------------- #

    def transfer_latency(self, transfer: Transfer) -> float:
        """Wire time of one transfer once granted its path (no queueing)."""
        hops = len(self.path(transfer.src, transfer.dst))
        flits = -(-transfer.words // self.flit_words)
        return hops * self.hop_latency_per_flit * flits

    def _check_block(self, b: int) -> None:
        if not 0 <= b < self.n_blocks:
            raise IndexError(f"block {b} outside tile of {self.n_blocks}")
