"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiments``            list the registered paper artifacts
``run <id> [...]``         regenerate one artifact (e.g. ``run table5``)
``plan <physics> <level> <chip>``  show the Table 5 planner's decision
``simulate``               run a small demo wave simulation
``all``                    regenerate every artifact (the EXPERIMENTS.md set)
``cache stats|clear``      inspect or wipe the persistent compile cache
``trace summary <file>``   summarize a trace written by ``--profile``
``check [benchmarks...]``  static-check compiled PIM programs (see
                           DESIGN.md "Static analysis"; ``--strict`` fails
                           on warnings too, ``--json`` writes a findings
                           report, ``--trace FILE`` validates a trace
                           document instead)
``bench``                  run the perf-regression guard (warm plan-replay
                           executor path); appends to ``BENCH_perf.json``
                           and, with ``--min-speedup X``, fails when the
                           executor speedup vs the seed tree drops below X
``perf history``           trend table over the ``BENCH_perf.json`` history
                           (null-safe on older entries; flags regressions)
``perf audit [benchmarks]``  static cost-bound audit: work/span/occupancy
                           lower bounds, scheduler optimality gap and the
                           PF001-PF006 anti-pattern findings (DESIGN.md
                           §15; ``--strict`` fails on warnings, ``--json``
                           writes the audit report)
``serve run``              run the crash-safe job service on a workdir:
                           supervised worker pool with heartbeats,
                           deadlines, seeded retry/backoff, quarantine
                           and a journaled job store (DESIGN.md §16)
``serve status``           summarize a service workdir from its journal
``serve chaos``            seeded chaos acceptance harness: injected
                           worker SIGKILLs must lose nothing, duplicate
                           nothing, and resume bit-identically
``submit``                 drop a job request into a service workdir
                           (idempotent content-keyed id; ``--wait``
                           blocks for the published result)

Performance knobs: ``--jobs N`` (or ``REPRO_JOBS``) compiles the experiment
matrix with N worker processes; ``--no-cache`` (or ``REPRO_NO_CACHE=1``)
bypasses the on-disk compile cache in ``REPRO_CACHE_DIR``; ``REPRO_SCHED=on``
(or ``bench --schedule``) makespan-schedules every lowered plan
(see DESIGN.md §13).

Observability knobs: ``--profile`` records a span/metric trace and writes
it as JSON (plus a Chrome ``trace_event`` sibling) to ``--trace-file`` /
``REPRO_TRACE_FILE``; ``--counters`` (or ``REPRO_COUNTERS=1``) turns on the
executor hardware counters — per-block/link occupancy, makespan attribution
and a per-resource Gantt in the Chrome trace (DESIGN.md §14); ``--log-level``
(or ``REPRO_LOG_LEVEL``) tunes the package-wide logger.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro import (
    CHIP_CONFIGS,
    EXPERIMENTS,
    RickerSource,
    SolverConfig,
    WaveSolver,
    plan_configuration,
    run_experiment,
)
from repro.core.cache import default_cache
from repro.obs import (
    build_document,
    configure_logging,
    format_duration,
    get_metrics,
    get_tracer,
    load_trace,
    render_tree,
    summarize,
    write_trace,
)


def _configure_cache(args) -> None:
    if getattr(args, "no_cache", False):
        default_cache(refresh=True).enabled = False


def _configure_counters(args) -> None:
    """Arm the executor hardware counters (``--counters``) for this run."""
    if getattr(args, "counters", False):
        os.environ["REPRO_COUNTERS"] = "1"


def _cache_status(elapsed_s: float) -> str:
    cache = default_cache()
    s = cache.stats
    state = f"{s.hits} hit{'s' if s.hits != 1 else ''}, {s.misses} miss{'es' if s.misses != 1 else ''}"
    if not cache.enabled:
        state = "disabled"
    return f"[compile cache: {state}] elapsed {format_duration(elapsed_s)}"


def _profile_begin(args) -> bool:
    """Arm the tracer/metrics for a ``--profile`` run. Returns armed state."""
    if not getattr(args, "profile", False):
        return False
    tracer = get_tracer()
    tracer.clear()
    tracer.enable()
    get_metrics().reset()
    return True


def _profile_end(args, command: str) -> None:
    """Export the recorded trace: tree to stderr, JSON + Chrome to disk."""
    tracer = get_tracer()
    tracer.disable()
    doc = build_document(tracer, get_metrics(), meta={"command": command})
    print(render_tree(doc), file=sys.stderr)
    path = getattr(args, "trace_file", None) or os.environ.get("REPRO_TRACE_FILE") or "repro_trace.json"
    json_path, chrome_path = write_trace(doc, path)
    print(f"[trace: {json_path} ({chrome_path} for chrome://tracing)]", file=sys.stderr)


def _cmd_experiments(_args) -> int:
    print("registered experiments (paper artifacts):")
    for name, fn in EXPERIMENTS.items():
        doc = (fn.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:14s} {doc}")
    return 0


def _cmd_run(args) -> int:
    _configure_cache(args)
    _configure_counters(args)
    kwargs = {}
    if args.order is not None:
        kwargs["order"] = args.order
    profiling = _profile_begin(args)
    t0 = time.perf_counter()
    try:
        with get_tracer().span(f"run/{args.id}"):
            try:
                table = run_experiment(args.id, jobs=args.jobs, **kwargs)
            except (KeyError, ValueError) as exc:
                print(exc, file=sys.stderr)
                return 2
            with get_tracer().span("report", experiment=args.id):
                rendered = table.render()
        print(rendered)
    finally:
        if profiling:
            _profile_end(args, f"run {args.id}")
    print(_cache_status(time.perf_counter() - t0), file=sys.stderr)
    return 0


def _cmd_all(args) -> int:
    _configure_cache(args)
    _configure_counters(args)
    profiling = _profile_begin(args)
    t0 = time.perf_counter()
    try:
        for name in EXPERIMENTS:
            kwargs = {"order": args.order} if args.order is not None else {}
            with get_tracer().span(f"run/{name}"):
                try:
                    table = run_experiment(name, jobs=args.jobs, **kwargs)
                except ValueError as exc:
                    print(exc, file=sys.stderr)
                    return 2
                with get_tracer().span("report", experiment=name):
                    rendered = table.render()
            print(rendered)
            print()
    finally:
        if profiling:
            _profile_end(args, "all")
    print(_cache_status(time.perf_counter() - t0), file=sys.stderr)
    return 0


def _cmd_cache(args) -> int:
    cache = default_cache(refresh=True)
    if args.action == "clear":
        n = cache.clear()
        print(f"cleared {n} cached compile{'s' if n != 1 else ''} from {cache.root}")
        return 0
    for k, v in cache.disk_stats().items():
        print(f"{k:10s} {v}")
    return 0


def _cmd_plan(args) -> int:
    try:
        chip = CHIP_CONFIGS[args.chip]
    except KeyError:
        print(f"unknown chip {args.chip!r}; choose from {sorted(CHIP_CONFIGS)}",
              file=sys.stderr)
        return 2
    plan = plan_configuration(args.physics, args.level, chip)
    print(f"benchmark : {args.physics} refinement level {args.level} "
          f"({plan.n_elements} elements)")
    print(f"chip      : {chip.name} ({chip.n_blocks} blocks)")
    print(f"technique : {plan.label}")
    print(f"blocks/elt: {plan.blocks_per_element}")
    print(f"batches   : {plan.n_batches} ({plan.elements_per_batch} elements each)")
    print(f"utilization: {plan.utilization:.0%}")
    return 0


def _cmd_simulate(args) -> int:
    solver = WaveSolver(
        SolverConfig(physics=args.physics, refinement_level=args.level,
                     order=args.order or 3, flux="riemann")
    )
    solver.add_source(RickerSource(position=(0.5, 0.5, 0.75), peak_frequency=6.0))
    print(f"simulating {args.physics}, {solver.mesh.n_elements} elements, "
          f"{args.steps} steps ...")
    solver.run(args.steps)
    print(f"t = {solver.time:.4f}s, field energy = {solver.energy():.4e}")
    return 0


def _cmd_check(args) -> int:
    # imported here: the analysis package pulls in the compiler stack,
    # which the other subcommands should not pay for.
    from repro.analysis.programs import check_benchmark
    from repro.analysis.tracecheck import validate_trace_file
    from repro.core.compiler import WavePimCompiler
    from repro.workloads.benchmarks import BENCHMARKS

    if args.trace is not None:
        errors = validate_trace_file(args.trace, require=args.require,
                                     require_counters=args.counters)
        for err in errors:
            print(f"FAIL: {err}", file=sys.stderr)
        if not errors:
            print(f"OK: {args.trace} valid")
        return 1 if errors else 0

    keys = args.benchmarks or list(BENCHMARKS)
    unknown = [k for k in keys if k not in BENCHMARKS]
    if unknown:
        print(f"unknown benchmark(s) {', '.join(unknown)}; "
              f"choose from {', '.join(BENCHMARKS)}", file=sys.stderr)
        return 2
    interconnects = (
        ["htree", "bus"] if args.interconnect == "both" else [args.interconnect]
    )

    compiler = WavePimCompiler(order=args.order or 7)
    entries = []
    n_errors = n_warnings = 0
    for key in keys:
        for ic in interconnects:
            checked, findings = check_benchmark(
                key, chip=args.chip, interconnect=ic,
                order=args.order, compiler=compiler,
                parity_rows=args.parity_rows,
            )
            errs = sum(1 for f in findings if f.is_error)
            n_errors += errs
            n_warnings += len(findings) - errs
            status = "FAIL" if errs else ("WARN" if findings else "ok")
            print(f"{status:4s} {key:18s} {args.chip}/{ic:5s} "
                  f"plan={checked.plan_label:10s} "
                  f"{len(checked.program)} instructions, "
                  f"{len(findings)} finding{'s' if len(findings) != 1 else ''}")
            for f in findings:
                print(f"     {f.format()}")
            entries.append({
                "benchmark": key,
                "chip": args.chip,
                "interconnect": ic,
                "plan": checked.plan_label,
                "instructions": len(checked.program),
                "findings": [f.as_dict() for f in findings],
            })

    if args.json:
        import json

        report = {
            "kind": "repro-check",
            "schema": 1,
            "strict": args.strict,
            "errors": n_errors,
            "warnings": n_warnings,
            "benchmarks": entries,
        }
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"[findings report: {args.json}]", file=sys.stderr)

    total = n_errors + n_warnings
    print(f"checked {len(entries)} program{'s' if len(entries) != 1 else ''}: "
          f"{n_errors} error{'s' if n_errors != 1 else ''}, "
          f"{n_warnings} warning{'s' if n_warnings != 1 else ''}")
    if n_errors or (args.strict and total):
        return 1
    return 0


def _cmd_bench(args) -> int:
    # imported here: the measurement pulls in the kernel/executor stack.
    from repro.eval.bench import (
        SEED_BASELINE,
        append_entry,
        history_summary,
        measure_hot_paths,
        regression_failures,
    )

    t0 = time.perf_counter()
    if args.schedule:
        os.environ["REPRO_SCHED"] = "on"
    entry = measure_hot_paths(rounds=args.rounds)
    shards = args.shards
    if shards is None and os.environ.get("REPRO_SHARDS"):
        shards = int(os.environ["REPRO_SHARDS"])
    if shards:
        from repro.eval.bench import measure_shard_scaling

        entry.update(measure_shard_scaling(
            n_shards=shards, trace_path=args.shard_trace))
    doc = append_entry(entry, path=args.json)

    def fmt_rate(v):
        return f"{v:.2f}" if isinstance(v, (int, float)) else "not measured"

    speedups = entry["speedup_vs_seed"]
    for key, seed in SEED_BASELINE.items():
        print(f"{key:16s} {entry[key]*1e3:9.2f} ms   seed {seed*1e3:8.2f} ms   "
              f"speedup {speedups[key]:6.2f}x")
    print(f"{'serial replay':16s} {entry['executor_serial_step_s']*1e3:9.2f} ms   "
          f"(plan path is {entry['executor_serial_step_s'] / max(entry['executor_step_s'], 1e-12):.1f}x faster)")
    print(f"{'cache_hit_rate':16s} {fmt_rate(entry.get('cache_hit_rate'))}")
    print(f"{'plan_reuse_rate':16s} {fmt_rate(entry.get('plan_reuse_rate'))}")
    print(f"{'plan_coverage':16s} {fmt_rate(entry.get('plan_coverage'))}")
    if isinstance(entry.get("makespan_cycles"), (int, float)):
        print(f"{'makespan':16s} {entry['makespan_cycles']:,.0f} cycles emission, "
              f"{entry.get('scheduled_makespan_cycles') or 0:,.0f} scheduled "
              f"(scheduler {entry.get('scheduler_speedup') or 0:.2f}x)")
    print(f"{'block_util':16s} {fmt_rate(entry.get('block_util'))}   "
          f"link_util {fmt_rate(entry.get('link_util'))}   "
          f"binding {entry.get('binding_resource') or 'not measured'}")
    print(f"{'counters':16s} {fmt_rate(entry.get('counters_overhead'))}x "
          f"enabled-replay overhead (budget 1.02x)")
    if entry.get("shards"):
        r6 = entry.get("r6") or {}
        print(f"{'shard scaling':16s} {entry['shard_speedup']:.2f}x at "
              f"{entry['shards']} shards "
              f"({entry['shard_makespan_s']*1e3:.3f} ms vs single-chip "
              f"{entry['single_chip_makespan_s']*1e3:.3f} ms in "
              f"{entry['single_chip_batches']} batches); exchange overlap "
              f"{fmt_rate(entry.get('shard_overlap_fraction'))} measured, "
              f"halo wait {entry['shard_halo_wait_s']*1e6:.1f} us")
        if r6:
            fit = ("fits" if r6.get("single_chip_fits")
                   else "does not fit one chip")
            print(f"{'r=6 capacity':16s} {r6.get('n_elements'):,} elements "
                  f"{fit} ({r6.get('chip')}); "
                  f"{r6.get('shards_needed')} shards hold it")
        if args.shard_trace:
            print(f"[shard Gantt trace: {args.shard_trace}]", file=sys.stderr)

    summary = history_summary(doc)
    measured = summary["executor_step_s"]["measured"]
    print(f"history: {summary['entries']} entr{'y' if summary['entries'] == 1 else 'ies'} "
          f"({measured} with executor_step_s measured), "
          f"best executor_step_s {summary['executor_step_s']['best']*1e3:.2f} ms"
          if measured else
          f"history: {summary['entries']} entries (executor_step_s never measured)")
    path = args.json or "BENCH_perf.json"
    print(f"[bench report: {path}] elapsed {format_duration(time.perf_counter() - t0)}",
          file=sys.stderr)

    failures = regression_failures(entry, min_speedup=args.min_speedup)
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_faults(args) -> int:
    # imported here: the campaign pulls in the kernel/executor stack.
    from repro.faults.campaign import DEFAULT_RATES, run_campaign, strict_violations
    from repro.workloads.benchmarks import BENCHMARKS

    _configure_counters(args)
    keys = args.benchmarks or list(BENCHMARKS)
    unknown = [k for k in keys if k not in BENCHMARKS]
    if unknown:
        print(f"unknown benchmark(s) {', '.join(unknown)}; "
              f"choose from {', '.join(BENCHMARKS)}", file=sys.stderr)
        return 2
    interconnects = (
        ["htree", "bus"] if args.interconnect == "both" else [args.interconnect]
    )
    rates = args.rates or list(DEFAULT_RATES)

    profiling = _profile_begin(args)
    t0 = time.perf_counter()
    try:
        with get_tracer().span("faults/campaign"):
            report = run_campaign(
                keys,
                rates=rates,
                interconnects=interconnects,
                seed=args.seed,
                steps=args.steps,
                level=args.level,
                order=args.order or 2,
                chip=args.chip,
                protect=not args.no_protect,
                switch_fail_rate=args.switch_rate,
            )
    finally:
        if profiling:
            _profile_end(args, "faults")

    for run in report["runs"]:
        who = f"{run['benchmark']:18s} {run['interconnect']:5s} rate={run['rate']:<8g}"
        if run["status"] != "ok":
            print(f"DEGR {who} {run['error']}")
            continue
        c = run["counts"]
        print(f"{'FAIL' if c['uncorrected'] else 'ok':4s} {who} "
              f"injected={c['injected']:<5d} corrected={c['corrected']:<5d} "
              f"uncorrected={c['uncorrected']:<3d} remaps={c['remaps']:<4d} "
              f"err={run['solution_rel_err']:.2e} "
              f"overhead={run['time_overhead']:.3f}x")

    violations = strict_violations(report)
    if args.json:
        import json

        report["strict"] = args.strict
        report["violations"] = violations
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"[campaign report: {args.json}]", file=sys.stderr)

    print(f"{len(report['runs'])} runs in {format_duration(time.perf_counter() - t0)}",
          file=sys.stderr)
    if args.strict and violations:
        for v in violations:
            print(f"STRICT: {v}", file=sys.stderr)
        return 1
    return 0


def _cmd_perf(args) -> int:
    import json

    # imported here: keeps `repro perf history` free of the kernel stack
    # (bench's measurement imports live inside measure_hot_paths).
    from repro.eval.bench import default_bench_path, render_history

    path = args.json or default_bench_path()
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except FileNotFoundError as exc:
        if args.json:
            # the user named a specific file; its absence is their error.
            print(f"cannot read bench history {path}: {exc}", file=sys.stderr)
            return 2
        # the default BENCH_perf.json not existing yet is the normal
        # fresh-checkout state: render the friendly empty table.
        doc = {"history": []}
    except (OSError, ValueError) as exc:
        print(f"cannot read bench history {path}: {exc}", file=sys.stderr)
        return 2
    print(render_history(doc))
    return 0


def _cmd_perf_audit(args) -> int:
    # imported here: the audit pulls in the compiler + executor stack.
    from repro.analysis.perf import audit_program
    from repro.analysis.programs import build_check_program
    from repro.core.compiler import WavePimCompiler
    from repro.pim.executor import ChipExecutor
    from repro.workloads.benchmarks import BENCHMARKS

    keys = args.benchmarks or list(BENCHMARKS)
    unknown = [k for k in keys if k not in BENCHMARKS]
    if unknown:
        print(f"unknown benchmark(s) {', '.join(unknown)}; "
              f"choose from {', '.join(BENCHMARKS)}", file=sys.stderr)
        return 2
    interconnects = (
        ["htree", "bus"] if args.interconnect == "both" else [args.interconnect]
    )

    compiler = WavePimCompiler(order=args.order or 7)
    entries = []
    n_errors = n_warnings = 0
    for key in keys:
        spec = BENCHMARKS[key]
        for ic in interconnects:
            checked = build_check_program(
                spec.physics, spec.refinement_level, chip=args.chip,
                flux_kind=spec.flux_kind,
                order=spec.order if args.order is None else args.order,
                interconnect=ic, compiler=compiler,
            )
            ex = ChipExecutor(checked.context.chip)
            audit = audit_program(
                checked.program, ex,
                block_rows=checked.context.block_rows,
            )
            findings = audit.findings
            errs = sum(1 for f in findings if f.is_error)
            n_errors += errs
            n_warnings += len(findings) - errs
            status = "FAIL" if errs else ("WARN" if findings else "ok")
            print(f"{status:4s} {key:18s} {args.chip}/{ic:5s} "
                  f"gap={audit.optimality_gap:6.3f}x "
                  f"bound={audit.bounds.makespan_lower_bound_s:.3e}s "
                  f"binding={audit.bounds.predicted_binding_resource:<12s} "
                  f"{len(findings)} finding{'s' if len(findings) != 1 else ''}")
            for f in findings:
                print(f"     {f.format()}")
            entries.append({
                "benchmark": key,
                "chip": args.chip,
                "interconnect": ic,
                "plan": checked.plan_label,
                **audit.as_dict(),
            })

    if args.json:
        import json

        report = {
            "kind": "repro-perf-audit",
            "schema": 1,
            "strict": args.strict,
            "errors": n_errors,
            "warnings": n_warnings,
            "benchmarks": entries,
        }
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"[perf audit report: {args.json}]", file=sys.stderr)

    total = n_errors + n_warnings
    print(f"audited {len(entries)} program{'s' if len(entries) != 1 else ''}: "
          f"{n_errors} error{'s' if n_errors != 1 else ''}, "
          f"{n_warnings} warning{'s' if n_warnings != 1 else ''}")
    if n_errors or (args.strict and total):
        return 1
    return 0


def _cmd_serve_run(args) -> int:
    # imported here: the service pulls in multiprocessing machinery the
    # other subcommands should not pay for.
    from repro.serve.supervisor import ServiceConfig, Supervisor

    config = ServiceConfig(
        workdir=args.workdir, workers=args.workers,
        max_pending=args.max_pending, deadline_s=args.deadline,
        heartbeat_timeout_s=args.heartbeat_timeout,
        max_retries=args.max_retries, seed=args.seed,
        log_level=args.log_level,
    )
    sup = Supervisor(config)
    counts = sup.store.counts()
    recovered = sum(v for k, v in counts.items()
                    if k in ("pending", "failed")) if sup.store.jobs else 0
    print(f"serve: {len(sup.store.jobs)} journaled job(s) "
          f"({recovered} runnable after recovery), {args.workers} workers, "
          f"workdir {config.workdir}", file=sys.stderr)
    try:
        sup.run(until_idle=not args.forever,
                max_wall_s=args.max_wall if args.max_wall > 0 else None)
    except KeyboardInterrupt:  # journal already has everything: clean exit
        print("serve: interrupted — journal is authoritative; rerun "
              "`repro serve run` to resume", file=sys.stderr)
    finally:
        sup.shutdown()
    counts = sup.store.counts()
    print(f"serve: drained to {counts}")
    print(f"[metrics: {config.workdir / 'metrics.json'}] "
          f"[journal: {sup.store.journal_path}]", file=sys.stderr)
    return 0 if counts.get("quarantined", 0) == 0 else 1


def _cmd_serve_status(args) -> int:
    import json

    from repro.serve.client import status

    doc = status(args.workdir)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2)
    print(f"workdir      : {doc['workdir']}")
    print(f"jobs         : {doc['jobs']} ({doc['events']} journal events)")
    for state, n in sorted(doc["counts"].items()):
        print(f"  {state:12s} {n}")
    print(f"retries      : {doc['retries_total']}")
    print(f"inbox        : {len(doc['inbox_pending'])} pending request(s)")
    print(f"digest       : {doc['journal_digest']}")
    return 0


def _cmd_serve_chaos(args) -> int:
    import json

    from repro.serve.chaos import run_chaos_check
    from repro.workloads.benchmarks import BENCHMARKS

    keys = args.benchmarks or ["acoustic_4", "elastic_central_4"]
    unknown = [k for k in keys if k not in BENCHMARKS]
    if unknown:
        print(f"unknown benchmark(s) {', '.join(unknown)}; "
              f"choose from {', '.join(BENCHMARKS)}", file=sys.stderr)
        return 2
    t0 = time.perf_counter()
    report = run_chaos_check(
        keys, n_jobs=args.jobs, kills=args.kills,
        mid_checkpoint=args.mid_checkpoint, hangs=args.hangs,
        seed=args.seed, steps=args.steps, workers=args.workers,
        workdir=args.workdir, max_wall_s=args.max_wall,
    )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"[chaos report: {args.json}]", file=sys.stderr)
    c = report["chaos"]
    print(f"workload  : {args.jobs} jobs on {', '.join(keys)} "
          f"({args.kills} kills incl. {args.mid_checkpoint} mid-checkpoint, "
          f"{args.hangs} hangs, seed {args.seed})")
    print(f"baseline  : {report['baseline']['counts']}")
    print(f"chaos     : {c['counts']} with {c['worker_restarts']} worker "
          f"restart(s)")
    print(f"digests   : baseline {report['baseline']['journal_digest'][:16]} "
          f"chaos {c['journal_digest'][:16]}")
    for v in report["violations"]:
        print(f"FAIL: {v}", file=sys.stderr)
    verdict = "ok" if not report["violations"] else "VIOLATED"
    print(f"invariants: {verdict} (zero lost, zero duplicated, bit-identical "
          f"resume, journal-resume idle)  "
          f"[{format_duration(time.perf_counter() - t0)}]")
    return 1 if report["violations"] else 0


def _cmd_submit(args) -> int:
    import json

    from repro.serve.client import submit, wait

    if args.kind == "simulate":
        params = {
            "physics": args.physics, "level": args.level,
            "order": args.order or 1, "steps": args.steps,
            "checkpoint_every": args.checkpoint_every,
        }
        if args.source_position:
            params["source"] = {
                "position": args.source_position,
                "peak_frequency": args.peak_frequency,
            }
    elif args.kind == "experiment":
        if not args.experiment:
            print("experiment jobs need --experiment NAME", file=sys.stderr)
            return 2
        params = {"name": args.experiment}
    else:  # sweep and the escape hatch: explicit JSON params
        if not args.params_json:
            print(f"{args.kind} jobs need --params-json", file=sys.stderr)
            return 2
        params = json.loads(args.params_json)
    if args.params_json and args.kind in ("simulate", "experiment"):
        params.update(json.loads(args.params_json))

    job_id = submit(args.workdir, args.kind, params,
                    max_retries=args.max_retries, deadline_s=args.deadline)
    print(f"submitted {args.kind} job {job_id} -> {args.workdir}")
    if args.wait > 0:
        try:
            outcome = wait(args.workdir, job_id, timeout_s=args.wait)
        except TimeoutError as exc:
            print(exc, file=sys.stderr)
            return 1
        print(json.dumps(outcome, indent=2))
        return 0 if outcome.get("status") == "done" else 1
    return 0


def _cmd_trace(args) -> int:
    try:
        doc = load_trace(args.file)
    except (OSError, ValueError) as exc:
        print(f"cannot read trace {args.file!r}: {exc}", file=sys.stderr)
        return 2
    print(summarize(doc))
    return 0


def main(argv=None) -> int:
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--log-level", default=None,
        metavar="LEVEL",
        help="logging level for the repro package "
             "(debug/info/warning/error; default: REPRO_LOG_LEVEL or info)")

    profiled = argparse.ArgumentParser(add_help=False)
    profiled.add_argument("--profile", action="store_true",
                          help="record a span/metric trace and write it as JSON "
                               "(+ Chrome trace_event sibling)")
    profiled.add_argument("--trace-file", default=None, metavar="PATH",
                          help="trace output path (default: REPRO_TRACE_FILE "
                               "or repro_trace.json)")
    profiled.add_argument("--counters", action="store_true",
                          help="record executor hardware counters "
                               "(REPRO_COUNTERS=1): per-block/link occupancy, "
                               "makespan attribution, Gantt tracks in the "
                               "Chrome trace")

    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", parents=[common]).set_defaults(fn=_cmd_experiments)

    p = sub.add_parser("run", parents=[common, profiled])
    p.add_argument("id")
    p.add_argument("--order", type=int, default=None,
                   help="element order (default: the paper's 7)")
    p.add_argument("--jobs", type=int, default=None,
                   help="compile worker processes (default: REPRO_JOBS or 1)")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the persistent compile cache")
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("all", parents=[common, profiled])
    p.add_argument("--order", type=int, default=None)
    p.add_argument("--jobs", type=int, default=None,
                   help="compile worker processes (default: REPRO_JOBS or 1)")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the persistent compile cache")
    p.set_defaults(fn=_cmd_all)

    p = sub.add_parser("cache", parents=[common])
    p.add_argument("action", choices=["stats", "clear"])
    p.set_defaults(fn=_cmd_cache)

    p = sub.add_parser("plan", parents=[common])
    p.add_argument("physics", choices=["acoustic", "elastic"])
    p.add_argument("level", type=int)
    p.add_argument("chip", choices=list(CHIP_CONFIGS))
    p.set_defaults(fn=_cmd_plan)

    p = sub.add_parser("simulate", parents=[common])
    p.add_argument("--physics", default="acoustic", choices=["acoustic", "elastic"])
    p.add_argument("--level", type=int, default=2)
    p.add_argument("--order", type=int, default=None)
    p.add_argument("--steps", type=int, default=100)
    p.set_defaults(fn=_cmd_simulate)

    p = sub.add_parser("check", parents=[common],
                       help="static-check compiled PIM programs / traces")
    p.add_argument("benchmarks", nargs="*", metavar="BENCHMARK",
                   help="benchmark keys (default: all six paper benchmarks)")
    p.add_argument("--chip", default="2GB", choices=list(CHIP_CONFIGS),
                   help="chip configuration (default: 2GB)")
    p.add_argument("--interconnect", default="both",
                   choices=["htree", "bus", "both"],
                   help="interconnect(s) to resolve TRANSFER routes on")
    p.add_argument("--order", type=int, default=None,
                   help="element order (default: the paper's 7)")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero on warnings, not just errors")
    p.add_argument("--parity-rows", type=int, default=0, metavar="N",
                   help="FT001: warn when a block's layout leaves fewer "
                        "than N spare rows for fault-model parity (default: "
                        "0, pass disabled)")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write a JSON findings report")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="validate a --profile trace document instead of "
                        "checking benchmark programs")
    p.add_argument("--require", action="append", default=[], metavar="TOKEN",
                   help="with --trace: fail unless some span name contains "
                        "TOKEN (repeatable)")
    p.add_argument("--counters", action="store_true",
                   help="with --trace: require hardware-counter evidence "
                        "(counters.* metrics + Gantt tracks in the Chrome "
                        "sibling)")
    p.set_defaults(fn=_cmd_check)

    p = sub.add_parser("bench", parents=[common],
                       help="run the perf-regression guard and append to "
                            "BENCH_perf.json")
    p.add_argument("--rounds", type=int, default=3, metavar="N",
                   help="best-of-N timing rounds per hot path (default: 3)")
    p.add_argument("--min-speedup", type=float, default=None, metavar="X",
                   help="fail unless executor_step_s is at least X times "
                        "faster than the seed tree (CI uses 1.0)")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="BENCH_perf.json path to append to (default: the "
                        "repo-root BENCH_perf.json)")
    p.add_argument("--schedule", action="store_true",
                   help="enable the makespan scheduler (REPRO_SCHED=on) for "
                        "every plan lowered during the measurement")
    p.add_argument("--shards", type=int, default=None, metavar="N",
                   help="also measure N-shard scaling of the capacity-axis "
                        "step workload vs the single-chip batched baseline "
                        "(REPRO_SHARDS env var sets the same; CI uses 4)")
    p.add_argument("--shard-trace", default=None, metavar="PATH",
                   help="with --shards: write the merged multi-chip Gantt "
                        "trace (per-shard lanes + inter-chip links) to PATH")
    p.set_defaults(fn=_cmd_bench)

    p = sub.add_parser("faults", parents=[common, profiled],
                       help="run a fault-injection campaign "
                            "(see DESIGN.md 'Fault model & recovery')")
    p.add_argument("benchmarks", nargs="*", metavar="BENCHMARK",
                   help="benchmark keys (default: all six paper benchmarks)")
    p.add_argument("--rates", type=float, nargs="+", default=None,
                   metavar="RATE",
                   help="fault rates to sweep (default: 1e-6 1e-3)")
    p.add_argument("--interconnect", default="htree",
                   choices=["htree", "bus", "both"],
                   help="interconnect(s) to sweep (default: htree)")
    p.add_argument("--seed", type=int, default=0,
                   help="fault-model seed (same seed -> identical campaign)")
    p.add_argument("--steps", type=int, default=2,
                   help="functional time-steps per run (default: 2)")
    p.add_argument("--level", type=int, default=1,
                   help="proxy mesh refinement level (default: 1)")
    p.add_argument("--order", type=int, default=None,
                   help="proxy element order (default: 2)")
    p.add_argument("--chip", default="512MB", choices=list(CHIP_CONFIGS),
                   help="chip configuration (default: 512MB)")
    p.add_argument("--no-protect", action="store_true",
                   help="disable parity/checksum protection (faults land)")
    p.add_argument("--switch-rate", type=float, default=0.0, metavar="RATE",
                   help="permanent switch-failure probability (default: 0)")
    p.add_argument("--strict", action="store_true",
                   help="exit nonzero unless the lowest rate ends with zero "
                        "uncorrected faults and a baseline-exact solution")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the campaign report as JSON")
    p.set_defaults(fn=_cmd_faults)

    p = sub.add_parser("perf", parents=[common],
                       help="inspect the BENCH_perf.json perf trajectory")
    perf_sub = p.add_subparsers(dest="perf_command", required=True)
    ph = perf_sub.add_parser("history",
                             help="trend table across bench history entries "
                                  "(null-safe; flags regressions/backfill)")
    ph.add_argument("--json", default=None, metavar="PATH",
                    help="BENCH_perf.json path (default: the repo-root file)")
    ph.set_defaults(fn=_cmd_perf)
    pa = perf_sub.add_parser(
        "audit",
        help="static cost-bound audit: lower bounds, optimality gap and "
             "PF001-PF006 anti-pattern findings (DESIGN.md §15)")
    pa.add_argument("benchmarks", nargs="*", metavar="BENCHMARK",
                    help="benchmark keys (default: all six paper benchmarks)")
    pa.add_argument("--chip", default="2GB", choices=list(CHIP_CONFIGS),
                    help="chip configuration (default: 2GB)")
    pa.add_argument("--interconnect", default="both",
                    choices=["htree", "bus", "both"],
                    help="interconnect(s) to audit the plan on")
    pa.add_argument("--order", type=int, default=None,
                    help="element order (default: the paper's 7)")
    pa.add_argument("--strict", action="store_true",
                    help="exit nonzero on warnings, not just errors")
    pa.add_argument("--json", default=None, metavar="PATH",
                    help="write a JSON audit report")
    pa.set_defaults(fn=_cmd_perf_audit)

    p = sub.add_parser("serve", parents=[common],
                       help="crash-safe wave-sim job service "
                            "(see DESIGN.md 'Service layer')")
    serve_sub = p.add_subparsers(dest="serve_command", required=True)
    sr = serve_sub.add_parser("run", parents=[common], help="run the supervised worker pool "
                                          "against a service workdir")
    sr.add_argument("--workdir", required=True, metavar="DIR",
                    help="service state root (journal, inbox, results, ckpt)")
    sr.add_argument("--workers", type=int, default=2,
                    help="worker pool size (default: 2)")
    sr.add_argument("--max-pending", type=int, default=256,
                    help="bounded store: live-job cap before QueueFull "
                         "backpressure (default: 256)")
    sr.add_argument("--deadline", type=float, default=60.0, metavar="S",
                    help="default per-job wall-clock deadline, enforced by "
                         "SIGKILL (default: 60)")
    sr.add_argument("--heartbeat-timeout", type=float, default=5.0,
                    metavar="S",
                    help="kill workers whose heartbeat is older than this "
                         "(default: 5)")
    sr.add_argument("--max-retries", type=int, default=3,
                    help="retries before quarantine (default: 3)")
    sr.add_argument("--seed", type=int, default=0,
                    help="retry-backoff jitter seed (same seed -> identical "
                         "schedules)")
    sr.add_argument("--forever", action="store_true",
                    help="keep polling the inbox after the store drains "
                         "(service mode; default exits when idle)")
    sr.add_argument("--max-wall", type=float, default=0.0, metavar="S",
                    help="hard wall-clock stop, 0 = unlimited (default: 0)")
    sr.set_defaults(fn=_cmd_serve_run)
    ss = serve_sub.add_parser("status", parents=[common],
                              help="summarize a service workdir from its "
                                   "journal")
    ss.add_argument("--workdir", required=True, metavar="DIR")
    ss.add_argument("--json", default=None, metavar="PATH",
                    help="also write the summary as JSON")
    ss.set_defaults(fn=_cmd_serve_status)
    sc = serve_sub.add_parser("chaos", parents=[common],
                              help="seeded chaos acceptance harness "
                                   "(baseline vs injected-kill run)")
    sc.add_argument("benchmarks", nargs="*", metavar="BENCHMARK",
                    help="benchmark keys for the workload (default: "
                         "acoustic_4 elastic_central_4)")
    sc.add_argument("--jobs", type=int, default=20,
                    help="workload size (default: 20)")
    sc.add_argument("--kills", type=int, default=5,
                    help="worker SIGKILLs to inject (default: 5)")
    sc.add_argument("--mid-checkpoint", type=int, default=1,
                    help="of the kills, how many land inside a checkpoint "
                         "write (default: 1)")
    sc.add_argument("--hangs", type=int, default=0,
                    help="hung-worker injections (heartbeat monitor must "
                         "fire; default: 0)")
    sc.add_argument("--seed", type=int, default=11,
                    help="chaos schedule seed (default: 11)")
    sc.add_argument("--steps", type=int, default=10,
                    help="solver steps per job (default: 10)")
    sc.add_argument("--workers", type=int, default=4,
                    help="worker pool size (default: 4)")
    sc.add_argument("--workdir", default=None, metavar="DIR",
                    help="where to keep the baseline/chaos workdirs "
                         "(default: a temp dir)")
    sc.add_argument("--max-wall", type=float, default=600.0, metavar="S",
                    help="per-run wall-clock cap (default: 600)")
    sc.add_argument("--json", default=None, metavar="PATH",
                    help="write the chaos report as JSON")
    sc.set_defaults(fn=_cmd_serve_chaos)

    p = sub.add_parser("submit", parents=[common],
                       help="submit a job to a service workdir "
                            "(repro serve run drains it)")
    p.add_argument("kind", choices=["simulate", "experiment", "sweep"])
    p.add_argument("--workdir", required=True, metavar="DIR")
    p.add_argument("--physics", default="acoustic",
                   choices=["acoustic", "elastic"])
    p.add_argument("--level", type=int, default=1)
    p.add_argument("--order", type=int, default=None)
    p.add_argument("--steps", type=int, default=10)
    p.add_argument("--checkpoint-every", type=int, default=4, metavar="N",
                   help="simulate: checkpoint cadence in steps (default: 4)")
    p.add_argument("--source-position", type=float, nargs=3, default=None,
                   metavar=("X", "Y", "Z"),
                   help="simulate: add a Ricker source at this position")
    p.add_argument("--peak-frequency", type=float, default=5.0,
                   help="simulate: Ricker peak frequency (default: 5)")
    p.add_argument("--experiment", default=None, metavar="NAME",
                   help="experiment jobs: the registered experiment id")
    p.add_argument("--params-json", default=None, metavar="JSON",
                   help="extra/override params as a JSON object (required "
                        "for sweep jobs)")
    p.add_argument("--max-retries", type=int, default=None,
                   help="override the service default")
    p.add_argument("--deadline", type=float, default=None, metavar="S",
                   help="override the service default deadline")
    p.add_argument("--wait", type=float, default=0.0, metavar="S",
                   help="block until the result is published (timeout S)")
    p.set_defaults(fn=_cmd_submit)

    p = sub.add_parser("trace", parents=[common],
                       help="inspect a trace recorded with --profile")
    trace_sub = p.add_subparsers(dest="trace_command", required=True)
    ps = trace_sub.add_parser("summary")
    ps.add_argument("file")
    ps.set_defaults(fn=_cmd_trace)

    args = parser.parse_args(argv)
    configure_logging(getattr(args, "log_level", None))
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
