"""Application layer: higher-level workflows built on the wave solver.

The paper motivates Wave-PIM with repeated-solve applications — "major
components of full-waveform inversion" (§1).  This subpackage provides
the canonical repeated-solve building block: time-reversal imaging
(source localization), which runs the same forward operator the PIM
accelerates, twice per image.
"""

from repro.apps.time_reversal import TimeReversalImager, ImagingResult

__all__ = ["TimeReversalImager", "ImagingResult"]
