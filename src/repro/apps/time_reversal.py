"""Time-reversal imaging: locate an unknown source from receiver traces.

The adjoint kernel of full-waveform inversion (the paper's §1 motivation:
FWI "requires repeated solutions of the wave equation") in its simplest
closed form:

1. **Forward**: an unknown source fires; a sparse receiver array records
   pressure traces.
2. **Reverse**: the traces are time-reversed and re-injected at the
   receiver positions; by reciprocity the wavefronts refocus at the
   original source location.
3. **Imaging**: the location of the maximum refocused amplitude over the
   reverse run estimates the source position.

Every step is a plain run of :class:`~repro.dg.solver.WaveSolver` — the
exact workload Wave-PIM accelerates, executed twice per image (and
thousands of times in a production inversion).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dg.solver import Receiver, SolverConfig, WaveSolver
from repro.dg.sources import RickerSource

__all__ = ["TimeReversalImager", "ImagingResult"]


@dataclass
class ImagingResult:
    """Outcome of one time-reversal localization."""

    estimated_position: np.ndarray
    true_position: np.ndarray
    focus_amplitude: float
    n_steps: int

    @property
    def error(self) -> float:
        return float(np.linalg.norm(self.estimated_position - self.true_position))


class _TraceSource:
    """Re-injects a recorded trace (time-reversed) at a fixed node."""

    def __init__(self, element_node, trace, dt, amplitude=1.0):
        self.element, self.node = element_node
        self.trace = np.asarray(trace, dtype=np.float64)
        self.dt = dt
        self.amplitude = amplitude

    def add_to_rhs(self, rhs, t, mesh, element) -> None:
        idx = int(round(t / self.dt))
        if 0 <= idx < len(self.trace):
            w = element.node_weights[self.node] * (mesh.h / 2.0) ** 3
            rhs[0, self.element, self.node] += self.amplitude * self.trace[idx] / w


class TimeReversalImager:
    """Forward-record / reverse-refocus source localization."""

    def __init__(
        self,
        config: SolverConfig | None = None,
        material=None,
        receiver_positions=None,
        peak_frequency: float = 6.0,
    ):
        self.config = config or SolverConfig(
            physics="acoustic", refinement_level=2, order=3, flux="riemann"
        )
        if self.config.physics != "acoustic":
            raise ValueError("time-reversal imaging is implemented for acoustic runs")
        self.material = material
        self.peak_frequency = peak_frequency
        if receiver_positions is None:
            # a face-centered array on each domain face
            c, lo, hi = 0.5, 0.15, 0.85
            receiver_positions = [
                (lo, c, c), (hi, c, c), (c, lo, c), (c, hi, c), (c, c, lo), (c, c, hi),
            ]
        self.receiver_positions = [tuple(p) for p in receiver_positions]

    # ------------------------------------------------------------------ #

    def _fresh_solver(self) -> WaveSolver:
        return WaveSolver(self.config, material=self.material)

    def forward(self, true_position, n_steps: int):
        """Fire the hidden source, record at the receiver array."""
        solver = self._fresh_solver()
        solver.add_source(
            RickerSource(position=tuple(true_position),
                         peak_frequency=self.peak_frequency, amplitude=10.0)
        )
        receivers = [Receiver(position=p, variable=0) for p in self.receiver_positions]
        for r in receivers:
            solver.add_receiver(r)
        solver.run(n_steps)
        return [np.array(r.trace) for r in receivers], solver.dt

    #: nodes this close to an injection point are excluded from the focus
    #: search (the re-injection amplitude always dominates locally).
    exclusion_radius: float = 0.18

    def reverse(self, traces, dt, n_steps: int):
        """Re-inject time-reversed traces; track the refocusing field."""
        solver = self._fresh_solver()
        coords = solver.mesh.node_coordinates(solver.element.node_coords)
        mask = np.ones(coords.shape[:2], dtype=bool)
        for pos, trace in zip(self.receiver_positions, traces):
            d2 = np.sum((coords - np.asarray(pos)) ** 2, axis=-1)
            en = np.unravel_index(np.argmin(d2), d2.shape)
            solver.sources.append(
                _TraceSource((int(en[0]), int(en[1])), trace[::-1], dt, amplitude=1.0)
            )
            mask &= d2 > self.exclusion_radius**2
        # the source wavelet peaked at t0 = 1.5/f, so the reversed field
        # refocuses at reverse-time T - t0: restrict the focus search to a
        # one-period window around that step.
        t0 = 1.5 / self.peak_frequency
        focus_step = n_steps - int(round(t0 / dt))
        half_window = max(1, int(round(1.0 / (self.peak_frequency * dt) / 2)))
        image = np.where(mask, 0.0, 0.0)
        for step in range(n_steps):
            solver.run(1, dt=dt)
            if abs(step - focus_step) > half_window:
                continue
            image = np.maximum(image, np.where(mask, np.abs(solver.state[0]), 0.0))
        e, n = np.unravel_index(np.argmax(image), image.shape)
        return coords[e, n], float(image[e, n]), image

    def reverse_coherent(self, traces, dt, n_steps: int):
        """Coherence imaging: one reverse run *per receiver*, image =
        product of the per-run focus-window amplitude maps.

        The true source is the one point where every receiver's
        back-propagated wavefront coincides; multiplying the maps
        suppresses the single-wavefront lobes that dominate any one run.
        Costs one forward-solve per receiver — exactly the repeated-solve
        pattern the paper builds Wave-PIM for.
        """
        product = None
        for pos, trace in zip(self.receiver_positions, traces):
            single = TimeReversalImager(
                self.config, material=self.material,
                receiver_positions=[pos], peak_frequency=self.peak_frequency,
            )
            _, _, image = single.reverse([trace], dt, n_steps)
            product = image if product is None else product * image
        e, n = np.unravel_index(np.argmax(product), product.shape)
        solver = self._fresh_solver()
        coords = solver.mesh.node_coordinates(solver.element.node_coords)
        return coords[e, n], float(product[e, n])

    def locate(self, true_position, n_steps: int = 200,
               coherent: bool = True) -> ImagingResult:
        """Full experiment: forward record, reverse refocus, pick the max."""
        traces, dt = self.forward(true_position, n_steps)
        if coherent:
            pos, amp = self.reverse_coherent(traces, dt, n_steps)
        else:
            pos, amp, _ = self.reverse(traces, dt, n_steps)
        return ImagingResult(
            estimated_position=np.asarray(pos, dtype=np.float64),
            true_position=np.asarray(true_position, dtype=np.float64),
            focus_amplitude=amp,
            n_steps=n_steps,
        )
