#!/usr/bin/env python
"""Repo-invariant lint: small AST checks no generic linter expresses.

Rules (stdlib ``ast`` only, so this runs in the bare container):

``RL001``  ``Instruction(...)`` may only be constructed in
           ``src/repro/pim/isa.py`` (the ISA itself, incl. the
           ``barrier()`` helper) and ``src/repro/core/kernels/`` (the
           generators).  Everything else must go through the kernel emit
           helpers or ``isa.barrier()`` — the static checker's access
           model (``repro.analysis.checker.accesses``) only understands
           streams built from those vetted shapes.  Tests are exempt
           (they hand-build known-bad programs on purpose).

``RL002``  ``<tracer>.span(...)`` must be used as a context manager
           (``with ... as sp:``) so spans always close, even on
           exceptions.  ``src/repro/obs/`` is exempt (it implements the
           span machinery).

``RL003``  ``repro.analysis`` may not be imported at module level outside
           the package itself: the executor and compiler lazily import it
           inside their ``verify`` paths, keeping the dependency edge
           analysis -> pim/core acyclic.

``RL004``  no per-instruction Python ``for`` loops over instruction
           streams (a loop variable whose ``.op`` is inspected in the
           body) outside ``pim/executor.py``, ``pim/plan.py`` (the
           lowering pass itself), ``pim/schedule.py`` (the DAG builder)
           and ``analysis/`` (the checker walks streams by design).
           Everything else must hand streams to
           ``ChipExecutor.run``/``lower`` — per-instruction dispatch in
           library code is exactly the hot path execution plans removed.
           Comprehensions are exempt (they filter, not dispatch).

``RL005``  no ``._dispatch`` references outside ``pim/executor.py``.
           Plan replay is the universal execution path; the serial
           dispatcher survives only as the executor-internal audit
           reference (``run(..., serial=True)``), and a new call site
           would silently fork the semantics the plan engine must mirror.

``RL007``  no silent swallowing of broad exceptions in ``src/``: an
           ``except Exception:`` / ``except BaseException:`` / bare
           ``except:`` handler whose body is only ``pass`` (or ``...``)
           hides crashes the service layer is specifically built to
           surface.  Swallowed exceptions must log through
           ``repro.obs`` or re-raise; narrowing the handler to the
           specific exception type also satisfies the rule.

``RL008``  no direct ``ExecutionPlan`` replay call sites outside the two
           executors: ``._run_plan`` / ``._run_plan_faulty`` may be
           referenced only in ``pim/executor.py`` (the replay engine) and
           ``pim/multichip.py`` (the sharded executor layered on it).
           Mirrors RL005 for the plan path — a third replay call site
           would fork the clock/counter semantics both executors must
           agree on.  Everything else goes through ``ChipExecutor.run``
           or ``ShardedExecutor.run_steps``.

``RL006``  every finding code emitted inside ``src/repro/analysis/`` (a
           ``XX123`` string literal passed as the first argument of a
           ``Finding(...)`` constructor or an ``add(...)`` emit helper)
           must be registered in ``repro.analysis.findings.FINDING_CODES``.
           ``Finding.__post_init__`` raises on unregistered codes, but
           only when the emitting branch actually runs — this catches the
           drift statically (a PL004 emit once shipped unregistered and
           only a rare scheduler-audit failure path would have tripped it).

Usage::

    python scripts/lint_repo.py [--root PATH]

Exit status 1 when any violation is found.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path
from typing import List, Tuple

Violation = Tuple[Path, int, str, str]  # (file, line, code, message)

#: files/directories (relative to the repo root) allowed to construct
#: Instruction directly.
RL001_ALLOWED = (
    "src/repro/pim/isa.py",
    "src/repro/core/kernels/",
)

RL002_EXEMPT = ("src/repro/obs/",)

RL003_ALLOWED = ("src/repro/analysis/",)

RL004_ALLOWED = (
    "src/repro/pim/executor.py",
    "src/repro/pim/plan.py",
    "src/repro/pim/schedule.py",
    "src/repro/analysis/",
)

RL005_ALLOWED = ("src/repro/pim/executor.py",)

RL008_ALLOWED = (
    "src/repro/pim/executor.py",
    "src/repro/pim/multichip.py",
)
RL008_ATTRS = ("_run_plan", "_run_plan_faulty")

#: RL006: where finding codes are registered / emitted.
RL006_REGISTRY = "src/repro/analysis/findings.py"
RL006_SCOPE = "src/repro/analysis/"
#: the shape of a finding code (mirrors findings.Finding's contract).
RL006_CODE = re.compile(r"^[A-Z]{2}\d{3}$")


def _registered_codes(root: Path) -> set:
    """FINDING_CODES keys, read statically from the registry module."""
    path = root / RL006_REGISTRY
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except (OSError, SyntaxError):
        return set()
    for node in ast.walk(tree):
        target = None
        if isinstance(node, ast.Assign) and node.targets:
            target = node.targets[0]
        elif isinstance(node, ast.AnnAssign):
            target = node.target
        if (target is not None and isinstance(target, ast.Name)
                and target.id == "FINDING_CODES"
                and isinstance(getattr(node, "value", None), ast.Dict)):
            return {k.value for k in node.value.keys
                    if isinstance(k, ast.Constant) and isinstance(k.value, str)}
    return set()


def _rel(path: Path, root: Path) -> str:
    return path.relative_to(root).as_posix()


def _lint_file(path: Path, root: Path,
               registered_codes: frozenset = frozenset()) -> List[Violation]:
    rel = _rel(path, root)
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except SyntaxError as exc:
        return [(path, exc.lineno or 0, "RL000", f"syntax error: {exc.msg}")]
    out: List[Violation] = []

    # RL001: Instruction(...) construction sites
    if not rel.startswith(RL001_ALLOWED):
        for node in ast.walk(tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "Instruction"):
                out.append((path, node.lineno, "RL001",
                            "Instruction() constructed outside pim/isa.py and "
                            "core/kernels/ — use the kernel emit helpers or "
                            "isa.barrier()"))

    # RL002: .span(...) only as a `with` context manager
    if not rel.startswith(RL002_EXEMPT):
        with_spans = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_spans.add(id(item.context_expr))
        for node in ast.walk(tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "span"
                    and id(node) not in with_spans):
                out.append((path, node.lineno, "RL002",
                            ".span(...) outside a `with` statement — spans "
                            "must close via the context manager"))

    # RL003: module-level repro.analysis imports
    if not rel.startswith(RL003_ALLOWED):
        for node in tree.body:  # module level only: lazy imports are the fix
            names: List[str] = []
            if isinstance(node, ast.Import):
                names = [a.name for a in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module:
                names = [node.module]
            if any(n == "repro.analysis" or n.startswith("repro.analysis.")
                   for n in names):
                out.append((path, node.lineno, "RL003",
                            "module-level repro.analysis import outside the "
                            "package — import lazily (inside the function) to "
                            "keep analysis -> pim/core acyclic"))

    # RL004: per-instruction dispatch loops (for <v> in ...: ... <v>.op ...)
    if not rel.startswith(RL004_ALLOWED):
        for node in ast.walk(tree):
            if not isinstance(node, ast.For):
                continue
            targets = {t.id for t in ast.walk(node.target)
                       if isinstance(t, ast.Name)}
            for sub in node.body:
                hit = next(
                    (n for n in ast.walk(sub)
                     if isinstance(n, ast.Attribute) and n.attr == "op"
                     and isinstance(n.value, ast.Name)
                     and n.value.id in targets),
                    None,
                )
                if hit is not None:
                    out.append((path, hit.lineno, "RL004",
                                "per-instruction Python loop over an "
                                "instruction stream — lower the stream "
                                "(ChipExecutor.lower) or run it whole; only "
                                "the executor/lowering/analysis layers may "
                                "dispatch per instruction"))
                    break

    # RL005: serial-dispatch call sites stay inside the executor
    if not rel.startswith(RL005_ALLOWED):
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute) and node.attr == "_dispatch":
                out.append((path, node.lineno, "RL005",
                            "._dispatch referenced outside pim/executor.py — "
                            "plan replay is the only execution path; request "
                            "the audit reference via run(..., serial=True)"))

    # RL008: plan-replay internals stay inside the two executors
    if not rel.startswith(RL008_ALLOWED):
        for node in ast.walk(tree):
            if isinstance(node, ast.Attribute) and node.attr in RL008_ATTRS:
                out.append((path, node.lineno, "RL008",
                            f".{node.attr} referenced outside pim/executor.py "
                            "and pim/multichip.py — plan replay goes through "
                            "ChipExecutor.run / ShardedExecutor.run_steps"))

    # RL007: broad except handlers must not swallow silently
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        caught = []
        if node.type is None:
            caught = ["<bare>"]
        elif isinstance(node.type, ast.Name):
            caught = [node.type.id]
        elif isinstance(node.type, ast.Tuple):
            caught = [e.id for e in node.type.elts if isinstance(e, ast.Name)]
        if not any(c in ("Exception", "BaseException", "<bare>") for c in caught):
            continue
        silent = all(
            isinstance(stmt, ast.Pass)
            or (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant))
            for stmt in node.body
        )
        if silent:
            out.append((path, node.lineno, "RL007",
                        "broad except swallows silently (body is only "
                        "pass/...) — log via repro.obs.log, re-raise, or "
                        "narrow the exception type"))

    # RL006: emitted finding codes must be registered in FINDING_CODES
    if rel.startswith(RL006_SCOPE) and rel != RL006_REGISTRY:
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call) and node.args):
                continue
            fn = node.func
            name = fn.id if isinstance(fn, ast.Name) else (
                fn.attr if isinstance(fn, ast.Attribute) else None)
            if name not in ("Finding", "add"):
                continue
            arg = node.args[0]
            if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)
                    and RL006_CODE.match(arg.value)):
                continue
            if arg.value not in registered_codes:
                out.append((path, node.lineno, "RL006",
                            f"finding code {arg.value!r} is not registered in "
                            "repro.analysis.findings.FINDING_CODES — register "
                            "it (Finding.__post_init__ would raise at emit "
                            "time)"))
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: this script's parent's parent)")
    args = parser.parse_args(argv)
    root = Path(args.root).resolve() if args.root else Path(__file__).resolve().parents[1]

    files = sorted((root / "src").rglob("*.py"))
    if not files:
        print(f"lint_repo: no Python files under {root / 'src'}", file=sys.stderr)
        return 2

    registered = frozenset(_registered_codes(root))
    if not registered:
        print(f"lint_repo: no FINDING_CODES found in {RL006_REGISTRY} — "
              "RL006 cannot run", file=sys.stderr)
        return 2

    violations: List[Violation] = []
    for path in files:
        violations.extend(_lint_file(path, root, registered))

    for path, line, code, msg in violations:
        print(f"{_rel(path, root)}:{line}: {code} {msg}", file=sys.stderr)
    if violations:
        print(f"lint_repo: {len(violations)} violation"
              f"{'s' if len(violations) != 1 else ''}", file=sys.stderr)
        return 1
    print(f"lint_repo: OK ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
