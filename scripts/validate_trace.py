#!/usr/bin/env python
"""Validate a trace written by ``python -m repro run <id> --profile``.

Thin command-line wrapper kept for existing CI invocations; the logic
lives in :mod:`repro.analysis.tracecheck` (also reachable via
``python -m repro check --trace``)::

    python scripts/validate_trace.py repro_trace.json \
        --require compile --require execute --require report

Exit status is non-zero on any failure.  Importable: ``validate(doc)``
returns a list of error strings (empty when the document is valid).
"""

from __future__ import annotations

import sys
from pathlib import Path

try:
    from repro.analysis.tracecheck import (  # noqa: F401  (re-exports)
        EXPECTED_KIND,
        EXPECTED_SCHEMA,
        main,
        validate,
        validate_chrome,
        validate_trace_file,
    )
except ImportError:  # repro not installed: run from the checkout
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    from repro.analysis.tracecheck import (  # noqa: F401
        EXPECTED_KIND,
        EXPECTED_SCHEMA,
        main,
        validate,
        validate_chrome,
        validate_trace_file,
    )

if __name__ == "__main__":
    sys.exit(main())
