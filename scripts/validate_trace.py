#!/usr/bin/env python
"""Validate a trace written by ``python -m repro run <id> --profile``.

Checks the JSON trace document (schema, non-empty span tree, well-formed
spans) and, from the CLI, the sibling Chrome ``trace_event`` export.
Used by CI to fail the build on empty or malformed traces::

    python scripts/validate_trace.py repro_trace.json \
        --require compile --require execute --require report

Exit status is non-zero on any failure. Importable: ``validate(doc)``
returns a list of error strings (empty when the document is valid).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

EXPECTED_SCHEMA = 1
EXPECTED_KIND = "repro-trace"


def _check_span(span, path: str, errors: list) -> None:
    if not isinstance(span, dict):
        errors.append(f"{path}: span is not an object")
        return
    name = span.get("name")
    if not isinstance(name, str) or not name:
        errors.append(f"{path}: missing span name")
        name = "?"
    here = f"{path}/{name}"
    start = span.get("start_s")
    end = span.get("end_s")
    if not isinstance(start, (int, float)) or not isinstance(end, (int, float)):
        errors.append(f"{here}: start_s/end_s must be numbers "
                      f"(got {start!r}, {end!r})")
    elif end < start:
        errors.append(f"{here}: end_s < start_s ({end} < {start})")
    children = span.get("children", [])
    if not isinstance(children, list):
        errors.append(f"{here}: children must be a list")
        return
    for child in children:
        _check_span(child, here, errors)


def _span_names(spans) -> set:
    names = set()
    stack = [s for s in spans if isinstance(s, dict)]
    while stack:
        span = stack.pop()
        name = span.get("name")
        if isinstance(name, str):
            names.add(name)
        stack.extend(c for c in span.get("children", []) if isinstance(c, dict))
    return names


def validate(doc, require=()) -> list:
    """Return a list of error strings; empty means the trace is valid."""
    errors = []
    if not isinstance(doc, dict):
        return ["trace document is not a JSON object"]
    if doc.get("schema") != EXPECTED_SCHEMA:
        errors.append(f"schema must be {EXPECTED_SCHEMA}, got {doc.get('schema')!r}")
    if doc.get("kind") != EXPECTED_KIND:
        errors.append(f"kind must be {EXPECTED_KIND!r}, got {doc.get('kind')!r}")
    spans = doc.get("spans")
    if not isinstance(spans, list) or not spans:
        errors.append("trace has no spans (empty or missing 'spans' list)")
        return errors
    for i, span in enumerate(spans):
        _check_span(span, f"spans[{i}]", errors)
    names = _span_names(spans)
    for token in require:
        if not any(token in name for name in names):
            errors.append(f"required phase {token!r} not found in span tree "
                          f"(have: {', '.join(sorted(names))})")
    return errors


def validate_chrome(doc) -> list:
    """Validate a Chrome ``trace_event`` export (the ``.chrome.json`` sibling)."""
    errors = []
    if not isinstance(doc, dict):
        return ["chrome trace is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        errors.append("chrome trace has no traceEvents")
        return errors
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append(f"traceEvents[{i}]: not an object")
            continue
        if not ev.get("name") or ev.get("ph") not in ("X", "B", "E", "i", "C", "M"):
            errors.append(f"traceEvents[{i}]: missing name or bad ph {ev.get('ph')!r}")
        if not isinstance(ev.get("ts"), (int, float)):
            errors.append(f"traceEvents[{i}]: ts must be a number")
        if ev.get("ph") == "X" and not isinstance(ev.get("dur"), (int, float)):
            errors.append(f"traceEvents[{i}]: complete event missing dur")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="path to the JSON trace document")
    parser.add_argument("--require", action="append", default=[],
                        metavar="TOKEN",
                        help="fail unless some span name contains TOKEN "
                             "(repeatable)")
    parser.add_argument("--no-chrome", action="store_true",
                        help="skip validating the .chrome.json sibling")
    args = parser.parse_args(argv)

    path = Path(args.trace)
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        print(f"FAIL: cannot read {path}: {exc}", file=sys.stderr)
        return 2

    errors = validate(doc, require=args.require)

    if not args.no_chrome:
        chrome_path = path.with_name(path.stem + ".chrome.json")
        if not chrome_path.exists():
            errors.append(f"missing Chrome export {chrome_path}")
        else:
            try:
                chrome_doc = json.loads(chrome_path.read_text())
            except (OSError, ValueError) as exc:
                errors.append(f"cannot read {chrome_path}: {exc}")
            else:
                errors.extend(validate_chrome(chrome_doc))

    if errors:
        for err in errors:
            print(f"FAIL: {err}", file=sys.stderr)
        return 1
    n = len(doc.get("spans", []))
    print(f"OK: {path} valid ({n} root span{'s' if n != 1 else ''})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
